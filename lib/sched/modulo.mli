(** Rau's iterative modulo scheduling (Micro-27, 1994) — the paper's
    software pipeliner.

    For a candidate II (starting at MinII), operations are scheduled in
    height-priority order. Each op gets the first legal slot in
    [estart, estart + II - 1] where [estart] honours scheduled
    predecessors; when no slot has free resources the op is force-placed
    and conflicting ops (resource holders, plus any successor whose
    dependence became violated) are evicted and rescheduled. A budget of
    [budget_ratio × n_ops] placements bounds the effort per II; on
    exhaustion II is bumped and everything restarts, exactly as Rau
    specifies. *)

type outcome = {
  kernel : Kernel.t;
  ii : int;           (** achieved initiation interval *)
  mii : int;          (** the lower bound scheduling started from *)
  placements_tried : int;  (** total placement steps across all IIs (budget spent) *)
  evictions : int;    (** ops unscheduled to make room, across all IIs *)
  iis_tried : int;    (** candidate IIs attempted, including the achieved one *)
  budget_exhausted : int;  (** candidate IIs abandoned on budget exhaustion *)
}

val schedule :
  ?obs:Obs.Trace.t ->
  ?cluster_of:(int -> int) ->
  ?budget_ratio:int ->
  ?max_ii:int ->
  machine:Mach.Machine.t ->
  mii:int ->
  Ddg.Graph.t ->
  outcome option
(** [cluster_of] as in {!List_sched.schedule} (defaults to cluster 0,
    multi-cluster machines must pass it). [budget_ratio] defaults to 10.
    [max_ii] defaults to {!Ddg.Minii.upper_bound} of the DDG; [None] is
    returned only if no II up to that bound yields a schedule (impossible
    for well-formed DDGs unless resources are unsatisfiable).

    [obs] (default off) traces one [modulo.schedule] span with a
    [modulo.try_ii] child per candidate II and feeds the
    [sched.placements] / [sched.evictions] / [sched.ii_escalations] /
    [sched.budget_exhausted] counters. *)

val schedule_at :
  ?obs:Obs.Trace.t ->
  ?cluster_of:(int -> int) ->
  ?budget_ratio:int ->
  machine:Mach.Machine.t ->
  ii:int ->
  Ddg.Graph.t ->
  outcome option
(** One attempt at exactly [ii] — {!schedule} with escalation disabled
    ([mii = max_ii = ii]). [None] means no schedule was found at that II
    within the budget; nothing is implied about other IIs. The exact
    solver uses this to realize a witness at a proven lower bound. *)

val clustered_mii :
  machine:Mach.Machine.t ->
  ops_per_cluster:int array ->
  copies_per_cluster:int array ->
  Ddg.Graph.t ->
  int
(** MinII of a clustered pipeline: [max] of the cluster-aware resource
    bound ({!Ddg.Minii.res_mii_clustered} over the given per-cluster op
    and copy loads) and the recurrence bound of the rebuilt DDG. The
    single definition both {!Partition.Driver.pipeline} and the exact
    solver's leaf evaluation start from, so their MII arithmetic cannot
    drift apart. *)

val ideal :
  ?obs:Obs.Trace.t ->
  ?budget_ratio:int -> machine:Mach.Machine.t -> Ddg.Graph.t -> outcome option
(** Software-pipeline on the monolithic single-bank machine of the same
    width: the paper's ideal pipeline whose II all degradations are
    measured against. *)
