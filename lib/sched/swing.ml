(* Height priority under a candidate II — same fixpoint as the Rau
   scheduler uses (kept local; it is 20 lines and the two schedulers are
   deliberately independent). *)
let heights ddg ~ii =
  let g = Ddg.Graph.graph ddg in
  let n = Graphlib.Digraph.node_count g in
  let h = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace h id 0) (Graphlib.Digraph.nodes g);
  let relax () =
    let changed = ref false in
    Graphlib.Digraph.iter_edges
      (fun e ->
        let w = Ddg.Dep.latency e.label - (ii * Ddg.Dep.distance e.label) in
        let cand = Hashtbl.find h e.dst + w in
        if cand > Hashtbl.find h e.src then begin
          Hashtbl.replace h e.src cand;
          changed := true
        end)
      g;
    !changed
  in
  let rec run i = if i > n + 1 then None else if relax () then run (i + 1) else Some h in
  run 0

let self_edges_feasible ddg ~ii =
  List.for_all
    (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) ->
      e.src <> e.dst || Ddg.Dep.latency e.label <= ii * Ddg.Dep.distance e.label)
    (Graphlib.Digraph.edges (Ddg.Graph.graph ddg))

(* Connectivity-preserving ordering: seed with the highest node of the
   most critical recurrence, then repeatedly append the unordered
   neighbour (either direction) of the ordered set with the greatest
   height. Nodes on recurrences outrank straight-line nodes as seeds. *)
let ordering ddg h =
  let g = Ddg.Graph.graph ddg in
  let cyclic = Hashtbl.create 16 in
  List.iter
    (fun comp -> List.iter (fun v -> Hashtbl.replace cyclic v ()) comp)
    (Graphlib.Scc.nontrivial g);
  let nodes = Graphlib.Digraph.nodes g in
  let unordered = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace unordered v ()) nodes;
  let priority v = ((if Hashtbl.mem cyclic v then 1 else 0), Hashtbl.find h v, -v) in
  let best l = List.fold_left
      (fun acc v -> match acc with
        | None -> Some v
        | Some b -> if priority v > priority b then Some v else acc)
      None l
  in
  let order = ref [] in
  let frontier = Hashtbl.create 64 in
  let add v =
    Hashtbl.remove unordered v;
    Hashtbl.remove frontier v;
    order := v :: !order;
    let note (e : Ddg.Dep.t Graphlib.Digraph.edge) other =
      if Hashtbl.mem unordered other then Hashtbl.replace frontier other ();
      ignore e
    in
    List.iter (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) -> note e e.dst) (Graphlib.Digraph.succs g v);
    List.iter (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) -> note e e.src) (Graphlib.Digraph.preds g v)
  in
  while Hashtbl.length unordered > 0 do
    let frontier_nodes = Hashtbl.fold (fun v () acc -> v :: acc) frontier [] in
    match best frontier_nodes with
    | Some v -> add v
    | None ->
        (* new connected component: reseed *)
        let all = Hashtbl.fold (fun v () acc -> v :: acc) unordered [] in
        (match best all with Some v -> add v | None -> ())
  done;
  List.rev !order

let try_ii ~cluster_of ~machine ~ii ddg tried =
  match heights ddg ~ii with
  | None -> None
  | Some h ->
      if not (self_edges_feasible ddg ~ii) then None
      else begin
        let g = Ddg.Graph.graph ddg in
        let order = ordering ddg h in
        (* Seeds are placed high enough that backward placement of their
           predecessors never needs a negative cycle: any latency chain is
           shorter than the sum of all latencies. *)
        let base = Ddg.Minii.upper_bound ddg in
        let mrt = Restab.create_modulo machine ~ii in
        let time = Hashtbl.create 64 in
        let ok = ref true in
        List.iter
          (fun v ->
            if !ok then begin
              incr tried;
              let op = Ddg.Graph.op ddg v in
              let req = Restab.request_for machine ~cluster:(cluster_of v) op in
              if not (Restab.satisfiable mrt req) then ok := false
              else begin
                let sched_preds =
                  List.filter_map
                    (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) ->
                      if e.src = v then None
                      else
                        Option.map
                          (fun t -> t + Ddg.Dep.latency e.label - (ii * Ddg.Dep.distance e.label))
                          (Hashtbl.find_opt time e.src))
                    (Graphlib.Digraph.preds g v)
                and sched_succs =
                  List.filter_map
                    (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) ->
                      if e.dst = v then None
                      else
                        Option.map
                          (fun t -> t - Ddg.Dep.latency e.label + (ii * Ddg.Dep.distance e.label))
                          (Hashtbl.find_opt time e.dst))
                    (Graphlib.Digraph.succs g v)
                in
                let estart = List.fold_left max 0 sched_preds in
                let lstart = List.fold_left min max_int sched_succs in
                let candidates =
                  match (sched_preds, sched_succs) with
                  | _ :: _, _ :: _ ->
                      if lstart < estart then []
                      else List.init (min (lstart - estart + 1) ii) (fun k -> estart + k)
                  | _ :: _, [] -> List.init ii (fun k -> estart + k)
                  | [], _ :: _ ->
                      (* backward scan, pulling the def toward its uses *)
                      List.filter (fun t -> t >= 0) (List.init ii (fun k -> lstart - k))
                  | [], [] -> List.init ii (fun k -> base + k)
                in
                match List.find_opt (fun t -> Restab.fits mrt ~cycle:t req) candidates with
                | Some t ->
                    Restab.reserve mrt ~cycle:t ~op:v req;
                    Hashtbl.replace time v t
                | None -> ok := false
              end
            end)
          order;
        if !ok then Some time else None
      end

let schedule ?obs ?cluster_of ?max_ii ~machine ~mii ddg =
  let m : Mach.Machine.t = machine in
  let cluster_of =
    match cluster_of with
    | Some f -> f
    | None ->
        if m.clusters > 1 then invalid_arg "Swing.schedule: multi-cluster machine needs cluster_of";
        fun _ -> 0
  in
  if mii < 1 then invalid_arg "Swing.schedule: mii must be >= 1";
  let max_ii = match max_ii with Some x -> x | None -> max mii (Ddg.Minii.upper_bound ddg) in
  let tried = ref 0 in
  Obs.Trace.span obs "swing.schedule" ~attrs:[ ("mii", string_of_int mii) ] @@ fun () ->
  let iis_tried = ref 0 in
  let rec attempt ii =
    if ii > max_ii then None
    else begin
      incr iis_tried;
      let before = !tried in
      let result =
        Obs.Trace.span obs "swing.try_ii" ~attrs:[ ("ii", string_of_int ii) ] (fun () ->
            try_ii ~cluster_of ~machine:m ~ii ddg tried)
      in
      Obs.Trace.incr obs Obs.Counter.Sched_placements (!tried - before);
      match result with
      | Some time ->
          Obs.Trace.add_attr obs "ii" (string_of_int ii);
          let placements =
            Hashtbl.fold
              (fun id t acc ->
                { Schedule.op = Ddg.Graph.op ddg id; cycle = t; cluster = cluster_of id }
                :: acc)
              time []
          in
          Some
            { Modulo.kernel = Kernel.make ~ii placements; ii; mii;
              placements_tried = !tried; evictions = 0; iis_tried = !iis_tried;
              budget_exhausted = 0 }
      | None ->
          Obs.Trace.incr obs Obs.Counter.Sched_ii_escalations 1;
          attempt (ii + 1)
    end
  in
  attempt mii

let ideal ?obs ~machine ddg =
  let m : Mach.Machine.t = machine in
  let mono = Mach.Machine.monolithic_of m in
  let mii = Ddg.Minii.min_ii ~width:(Mach.Machine.width m) ddg in
  schedule ?obs ~machine:mono ~mii ddg
