(** Swing modulo scheduling (Llosa, González, Ayguadé, Valero — PACT'96).

    The lifetime-sensitive pipeliner that Nystrom and Eichenberger use in
    the Section 6.3 comparison ("they use Swing Scheduling that attempts
    to reduce register requirements"). Two ideas distinguish it from
    Rau's iterative scheduler:

    - {b ordering}: operations are ordered so that each one is adjacent
      (in the DDG) to already-ordered operations, starting from the most
      constrained recurrences — so at placement time a node's scheduled
      neighbours sit on one side of it whenever possible;
    - {b placement}: a node with only scheduled predecessors scans its
      window forward from its earliest start, one with only scheduled
      successors scans {e backward} from its latest start, pulling
      definitions toward their uses. There is no eviction: if a node's
      window has no free slot, II is bumped and scheduling restarts.

    Our ordering is a connectivity-preserving approximation of Llosa's
    grouped two-direction sweep: SCCs are seeded in decreasing
    recurrence-criticality order and the frontier grows along DDG edges
    by decreasing height; the placement phase is implemented as
    specified. The result is typically the same II as Rau's scheduler
    with equal or lower {!Pressure.max_live} — the property the bench's
    scheduler comparison measures. *)

val schedule :
  ?obs:Obs.Trace.t ->
  ?cluster_of:(int -> int) ->
  ?max_ii:int ->
  machine:Mach.Machine.t ->
  mii:int ->
  Ddg.Graph.t ->
  Modulo.outcome option
(** Same contract as {!Modulo.schedule}; [placements_tried] counts
    placement attempts across all IIs. Swing never evicts and has no
    placement budget, so [evictions] and [budget_exhausted] are 0.
    [obs] traces [swing.schedule] / [swing.try_ii] spans and the
    [sched.placements] / [sched.ii_escalations] counters. *)

val ideal :
  ?obs:Obs.Trace.t ->
  machine:Mach.Machine.t -> Ddg.Graph.t -> Modulo.outcome option
(** Pipeline on the monolithic machine of the same width. *)
