(** Resilient pipeline driver — a graceful-degradation ladder over the
    Section-4 framework.

    {!Partition.Driver.pipeline} runs the framework once with one
    configuration and reports the first failure. Production compilation
    of a heavy workload cannot afford that: every loop must come out
    with {e some} verified schedule. This driver wraps the framework in
    a ladder of increasingly conservative configurations and descends
    until one produces code that the independent {!Verify} analyzers
    accept:

    + the configured partitioner at the base scheduling budget;
    + {b II-budget escalation} — the same partitioner with escalating
      [budget_ratio] values (more placement attempts, so IIs that the
      base budget abandons are reached);
    + {b partitioner fallback} — the remaining partitioners in chain
      order (Greedy → UAS → BUG by default), each with the full budget
      escalation; a partition whose copy count exceeds the configured
      saturation threshold is rejected without scheduling;
    + {b single-bank merge} — every register in bank 0: no copies can
      be needed, at the price of using one cluster's issue width;
    + {b spill-and-reschedule} (within any rung that allocates) — when
      per-bank colouring spills, the clustered kernel is re-derived
      over the spill-rewritten body so the emitted schedule matches the
      emitted code;
    + {b non-pipelined surrender} — a flat (list-scheduled) single-bank
      schedule, the rung that cannot fail for resource or recurrence
      reasons.

    Every failed attempt is recorded in the attempt log with its stage
    and diagnostic code; the successful rung rides on the result, so
    callers (and [rbp stress]) can report exactly which rung produced
    the emitted code. The driver never raises on malformed input and
    never returns unverified code: each candidate is re-checked by the
    {!Verify} analyzers before being accepted, and a rung whose output
    they reject is treated as failed. *)

type rung =
  | Pipelined of { partitioner : string; budget_ratio : int; respilled : bool }
      (** modulo-scheduled with the named partitioner; [respilled] when
          the kernel was re-derived over spill-rewritten code *)
  | Single_bank of { budget_ratio : int; respilled : bool }
      (** modulo-scheduled with every register merged into bank 0 *)
  | Non_pipelined  (** flat list schedule, single bank — the last rung *)

val rung_name : rung -> string

type code =
  | Kernel of { kernel : Sched.Kernel.t; ii : int; ideal_ii : int }
      (** a software pipeline; degradation is [ii / ideal_ii] *)
  | Flat of Sched.Schedule.t  (** non-pipelined surrender *)

type result = {
  loop : Ir.Loop.t;                  (** original body *)
  machine : Mach.Machine.t;
  rewritten : Ir.Loop.t;             (** emitted body: copies, plus spill code if any *)
  assignment : Partition.Assign.t;   (** final banks incl. copy/spill registers *)
  code : code;
  alloc : Regalloc.Alloc.t option;   (** present when [config.allocate] *)
  rung : rung;                       (** the ladder rung that produced the code *)
  n_copies : int;
  spill_count : int;
  attempts : Verify.Stage_error.attempt list;
      (** every failed attempt before the successful rung, oldest first *)
  diags : Verify.Diag.t list;
      (** non-error findings of the final verification (warnings/infos) *)
}

type hooks = {
  on_loop : Ir.Loop.t -> Ir.Loop.t;
  on_machine : Mach.Machine.t -> Mach.Machine.t;
  on_assignment : Partition.Assign.t -> Partition.Assign.t;
      (** applied to the post-copy-insertion assignment of every rung *)
  on_rewritten : Ir.Loop.t -> Ir.Loop.t;
      (** applied to the copy-rewritten body of every rung *)
  on_kernel : Sched.Kernel.t -> Sched.Kernel.t;
      (** applied to every clustered kernel before verification *)
}
(** Stage-artifact transformers, the seam the deterministic
    fault-injection harness ({!Inject}) plugs into. Identity by
    default; the driver applies them at fixed points so injected
    corruption flows into exactly the artifacts the verifier audits. *)

val no_hooks : hooks

type config = {
  partitioners : (string * Partition.Driver.partitioner) list;
      (** fallback chain, tried in order *)
  budget_schedule : int list;
      (** escalating [budget_ratio] backoff schedule, e.g. [[10; 40; 160]] *)
  copy_saturation : float option;
      (** reject a partition needing more than [ratio × body size] copies *)
  spill_rounds : int list;
      (** escalating [max_rounds] schedule for the per-bank allocator *)
  reschedule_after_spill : bool;
      (** re-derive the kernel over spill-rewritten code (default true) *)
  allow_non_pipelined : bool;  (** enable the final surrender rung *)
  allocate : bool;             (** run per-bank colouring (step 5) *)
  scheduler : Partition.Driver.scheduler;
}

val default_config : config
(** Greedy → UAS → BUG, budgets [[10; 40]], no saturation threshold,
    spill rounds [[8; 32]], reschedule-after-spill, surrender enabled,
    allocation on, Rau scheduling. *)

val deadline_code : string
(** ["PIPE008"] — the diagnostic code of every cancellation-induced
    failure, the discriminator callers use to tell "the deadline fired"
    from "the ladder genuinely could not compile this loop". *)

val run :
  ?obs:Obs.Trace.t ->
  ?cancel:(unit -> bool) ->
  ?config:config ->
  ?hooks:hooks ->
  machine:Mach.Machine.t ->
  Ir.Loop.t ->
  (result, Verify.Stage_error.t) Stdlib.result
(** Run the ladder. [Ok] results always carry code that passed every
    applicable {!Verify} analyzer; [Error] carries the stage and
    diagnostic code of the last rung's failure plus the whole attempt
    trace. Never raises on malformed input: bad IR is rejected up front
    with its IR diagnostic code, malformed assignments and copy
    failures are caught per rung.

    [cancel] is a cooperative cancellation poll (e.g.
    {!Engine.Cancel.guard} over a deadline token; constant [false] by
    default). It is consulted at every stage boundary inside a rung and
    between rungs; once it returns [true] the driver abandons the run
    at the next boundary — no artifact escapes, nothing is left half
    built — and returns an [Error] whose code is {!deadline_code} and
    whose attempt trace covers {e every} rung tried before the
    deadline, including the one the cancellation interrupted. An [Ok]
    whose verification completed just before the token fired is still
    returned: cancellation never discards verified code.

    [obs] (default off) traces one [ladder] span per call with one
    [ladder.rung] child per rung attempted (scheduler, partitioner and
    allocator spans nested inside), and counts
    [ladder.rung_entered{RUNG}] / [ladder.rung_failed{RUNG}] per rung
    name — the successful rung is the entered one that never failed. *)

val verify_diags : result -> Verify.Diag.t list
(** Re-run every applicable analyzer over the result's artifacts — the
    oracle the stress harness uses to audit the driver's own claim that
    emitted code is verified. *)
