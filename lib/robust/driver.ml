type rung =
  | Pipelined of { partitioner : string; budget_ratio : int; respilled : bool }
  | Single_bank of { budget_ratio : int; respilled : bool }
  | Non_pipelined

let rung_name = function
  | Pipelined { partitioner; budget_ratio; respilled } ->
      Printf.sprintf "pipelined(%s, budget=%d%s)" partitioner budget_ratio
        (if respilled then ", respill" else "")
  | Single_bank { budget_ratio; respilled } ->
      Printf.sprintf "single-bank(budget=%d%s)" budget_ratio
        (if respilled then ", respill" else "")
  | Non_pipelined -> "non-pipelined"

type code =
  | Kernel of { kernel : Sched.Kernel.t; ii : int; ideal_ii : int }
  | Flat of Sched.Schedule.t

type result = {
  loop : Ir.Loop.t;
  machine : Mach.Machine.t;
  rewritten : Ir.Loop.t;
  assignment : Partition.Assign.t;
  code : code;
  alloc : Regalloc.Alloc.t option;
  rung : rung;
  n_copies : int;
  spill_count : int;
  attempts : Verify.Stage_error.attempt list;
  diags : Verify.Diag.t list;
}

type hooks = {
  on_loop : Ir.Loop.t -> Ir.Loop.t;
  on_machine : Mach.Machine.t -> Mach.Machine.t;
  on_assignment : Partition.Assign.t -> Partition.Assign.t;
  on_rewritten : Ir.Loop.t -> Ir.Loop.t;
  on_kernel : Sched.Kernel.t -> Sched.Kernel.t;
}

let no_hooks =
  {
    on_loop = Fun.id;
    on_machine = Fun.id;
    on_assignment = Fun.id;
    on_rewritten = Fun.id;
    on_kernel = Fun.id;
  }

type config = {
  partitioners : (string * Partition.Driver.partitioner) list;
  budget_schedule : int list;
  copy_saturation : float option;
  spill_rounds : int list;
  reschedule_after_spill : bool;
  allow_non_pipelined : bool;
  allocate : bool;
  scheduler : Partition.Driver.scheduler;
}

let default_config =
  {
    partitioners =
      [
        ("greedy", Partition.Driver.Greedy Rcg.Weights.default);
        ("uas", Partition.Driver.Uas);
        ("bug", Partition.Driver.Bug);
      ];
    budget_schedule = [ 10; 40 ];
    copy_saturation = None;
    spill_rounds = [ 8; 32 ];
    reschedule_after_spill = true;
    allow_non_pipelined = true;
    allocate = true;
    scheduler = Partition.Driver.Rau;
  }

(* ------------------------------------------------------------------ *)
(* Verification oracle                                                 *)

let alloc_view (a : Regalloc.Alloc.t) =
  {
    Verify.Pipeline.code = a.Regalloc.Alloc.code;
    mapping = a.Regalloc.Alloc.mapping;
    live_out = a.Regalloc.Alloc.live_out;
  }

let verify_diags (r : result) =
  let m = r.machine in
  let ddg_r = Ddg.Graph.of_loop ~latency:m.Mach.Machine.latency r.rewritten in
  let stages =
    {
      (Verify.Pipeline.stages ~machine:m r.loop) with
      Verify.Pipeline.partition = Some (r.assignment, r.rewritten);
      alloc = Option.map alloc_view r.alloc;
    }
  in
  match r.code with
  | Kernel { kernel; _ } ->
      Verify.Pipeline.run { stages with Verify.Pipeline.clustered = Some (ddg_r, kernel) }
  | Flat sched ->
      Verify.Pipeline.run stages @ Verify.Sched_check.flat ~machine:m ~ddg:ddg_r sched

(* ------------------------------------------------------------------ *)
(* The ladder                                                          *)

let deadline_code = "PIPE008"

let run ?obs ?(cancel = fun () -> false) ?(config = default_config) ?(hooks = no_hooks)
    ~machine loop =
  let m : Mach.Machine.t = hooks.on_machine machine in
  let loop = hooks.on_loop loop in
  let subject = Ir.Loop.name loop in
  Obs.Trace.span obs "ladder"
    ~attrs:[ ("loop", subject); ("machine", m.Mach.Machine.name) ]
  @@ fun () ->
  let budgets =
    match (config.scheduler, config.budget_schedule) with
    | _, [] -> [ 10 ]
    | Partition.Driver.Swing, b :: _ ->
        [ b ] (* Swing has no placement budget; escalation cannot help *)
    | Partition.Driver.Rau, bs -> bs
  in
  let spill_rounds = if config.spill_rounds = [] then [ 8 ] else config.spill_rounds in
  let attempts = ref [] (* newest first *) in
  let log ?code ~rung stage detail =
    attempts := Verify.Stage_error.attempt ~rung ?code stage detail :: !attempts
  in
  (* Failures inside one rung carry (stage, optional code, detail). *)
  let ( let* ) = Stdlib.Result.bind in
  let stage_fail ?code stage detail = Error (stage, code, detail) in
  (* Cooperative cancellation: polled at stage boundaries inside every
     rung and between rungs. A fired token turns the next boundary into
     an ordinary stage failure carrying {!deadline_code}, so the rung
     unwinds through the same path as any other failure — attempt
     logged, no artifact escapes — and the ladder stops descending. *)
  let guard stage =
    if cancel () then stage_fail ~code:deadline_code stage "deadline exceeded" else Ok ()
  in
  let deadline_error () =
    let stage =
      match !attempts with
      | (a : Verify.Stage_error.attempt) :: _ -> a.Verify.Stage_error.at_stage
      | [] -> Verify.Stage_error.Ideal_schedule
    in
    Error
      (Verify.Stage_error.make
         ~attempts:(List.rev !attempts)
         ~code:deadline_code ~stage ~subject
         (Printf.sprintf "deadline exceeded; ladder abandoned after %d attempts"
            (List.length !attempts)))
  in
  let schedule_clustered ~budget ~cluster_of ~mii ddg =
    match config.scheduler with
    | Partition.Driver.Rau ->
        Sched.Modulo.schedule ?obs ~budget_ratio:budget ~cluster_of ~machine:m ~mii ddg
    | Partition.Driver.Swing -> Sched.Swing.schedule ?obs ~cluster_of ~machine:m ~mii ddg
  in
  let single_bank_assignment body =
    Partition.Assign.of_list
      (List.map (fun r -> (r, 0)) (Ir.Vreg.Set.elements (Ir.Loop.vregs body)))
  in
  let cluster_loads cluster_of ops =
    let opsc = Array.make m.clusters 0 and cpc = Array.make m.clusters 0 in
    List.iter
      (fun op ->
        let c = cluster_of (Ir.Op.id op) in
        if Ir.Op.is_copy op then cpc.(c) <- cpc.(c) + 1 else opsc.(c) <- opsc.(c) + 1)
      ops;
    (opsc, cpc)
  in
  (* Step 5, with escalating spill rounds; logs intermediate failures. *)
  let allocate_stage ~rung ~assignment body =
    if not config.allocate then Ok None
    else
      let rec go = function
        | [] -> assert false (* spill_rounds is non-empty *)
        | [ mr ] -> (
            match
              Regalloc.Alloc.allocate_loop ?obs ~max_rounds:mr ~machine:m ~assignment body
            with
            | Ok a -> Ok (Some a)
            | Error e ->
                stage_fail ~code:e.Verify.Stage_error.code Verify.Stage_error.Allocation
                  e.Verify.Stage_error.message)
        | mr :: rest -> (
            match
              Regalloc.Alloc.allocate_loop ?obs ~max_rounds:mr ~machine:m ~assignment body
            with
            | Ok a -> Ok (Some a)
            | Error e ->
                log ~code:e.Verify.Stage_error.code ~rung Verify.Stage_error.Allocation
                  (Printf.sprintf "%s (max_rounds %d)" e.Verify.Stage_error.message mr);
                go rest)
      in
      go spill_rounds
  in
  let check ?(stage = Verify.Stage_error.Verification) diags =
    match Verify.Diag.errors diags with
    | [] -> Ok diags
    | first :: _ as errs ->
        stage_fail ~code:first.Verify.Diag.code stage
          (Printf.sprintf "%s%s" (Verify.Diag.to_string first)
             (match List.length errs - 1 with
             | 0 -> ""
             | n -> Printf.sprintf " (and %d more errors)" n))
  in
  let finish candidate =
    let* () = guard Verify.Stage_error.Verification in
    (* The oracle has the final word regardless of which rung we came by. *)
    let* diags = check (verify_diags candidate) in
    Ok { candidate with diags; attempts = List.rev !attempts }
  in
  (* One modulo-scheduled rung: the whole framework from partitioning on. *)
  let attempt_modulo ~ideal ~ddg ~partitioner ~budget =
    let mk_rung ~respilled =
      match partitioner with
      | Some (name, _) -> Pipelined { partitioner = name; budget_ratio = budget; respilled }
      | None -> Single_bank { budget_ratio = budget; respilled }
    in
    let rung = rung_name (mk_rung ~respilled:false) in
    Obs.Trace.span obs "ladder.rung" ~attrs:[ ("rung", rung) ] @@ fun () ->
    Obs.Trace.incr obs ~label:rung Obs.Counter.Ladder_rung_entered 1;
    let result =
      let ideal_ii = ideal.Sched.Modulo.ii in
      let* () = guard Verify.Stage_error.Partitioning in
      let* assignment0 =
        match partitioner with
        | None -> Ok (single_bank_assignment loop)
        | Some (_, p) -> (
            match
              Partition.Driver.choose_partition ?obs p ~machine:m ~ddg
                ~ideal_kernel:ideal.Sched.Modulo.kernel ~depth:(Ir.Loop.depth loop)
            with
            | a -> Ok a
            | exception Invalid_argument msg ->
                stage_fail Verify.Stage_error.Partitioning msg)
      in
      let assignment0 =
        Ir.Vreg.Set.fold
          (fun r acc -> if Ir.Vreg.Map.mem r acc then acc else Ir.Vreg.Map.add r 0 acc)
          (Ir.Loop.vregs loop) assignment0
      in
      let* () =
        if Partition.Assign.all_in_range ~banks:m.clusters assignment0 then Ok ()
        else
          stage_fail ~code:"PT002" Verify.Stage_error.Partitioning
            "assignment names a bank the machine lacks"
      in
      let* ins =
        match Partition.Copies.insert_loop ~machine:m ~assignment:assignment0 loop with
        | ins -> Ok ins
        | exception Invalid_argument msg -> stage_fail Verify.Stage_error.Copy_insertion msg
      in
      let* () =
        match config.copy_saturation with
        | Some ratio
          when float_of_int ins.Partition.Copies.n_copies
               > ratio *. float_of_int (Ir.Loop.size loop) ->
            stage_fail ~code:"PT005" Verify.Stage_error.Copy_insertion
              (Printf.sprintf "copy-saturated partition: %d copies for %d ops"
                 ins.Partition.Copies.n_copies (Ir.Loop.size loop))
        | _ -> Ok ()
      in
      let assignment = hooks.on_assignment ins.Partition.Copies.assignment in
      let rewritten = hooks.on_rewritten ins.Partition.Copies.loop in
      let ddg' = Ddg.Graph.of_loop ~latency:m.latency rewritten in
      let* cluster_of =
        match Partition.Driver.cluster_map assignment rewritten with
        | Ok f -> Ok f
        | Error msg -> stage_fail ~code:"PT001" Verify.Stage_error.Partitioning msg
      in
      let mii =
        max
          (Ddg.Minii.res_mii_clustered ~machine:m
             ~ops_per_cluster:ins.Partition.Copies.ops_per_cluster
             ~copies_per_cluster:ins.Partition.Copies.copies_per_cluster)
          (Ddg.Minii.rec_mii ddg')
      in
      let* () = guard Verify.Stage_error.Clustered_schedule in
      let* clustered =
        match schedule_clustered ~budget ~cluster_of ~mii ddg' with
        | Some o -> Ok o
        | None ->
            stage_fail Verify.Stage_error.Clustered_schedule
              (Printf.sprintf "no feasible II (MII %d, budget_ratio %d)" mii budget)
        | exception Invalid_argument msg ->
            stage_fail Verify.Stage_error.Clustered_schedule msg
      in
      let kernel = hooks.on_kernel clustered.Sched.Modulo.kernel in
      (* Fail fast on a bad partition or schedule before paying for step 5. *)
      let* _ =
        check
          (Verify.Pipeline.run
             {
               (Verify.Pipeline.stages ~machine:m loop) with
               Verify.Pipeline.ideal = Some (ddg, ideal.Sched.Modulo.kernel);
               partition = Some (assignment, rewritten);
               clustered = Some (ddg', kernel);
             })
      in
      let* () = guard Verify.Stage_error.Allocation in
      let* alloc = allocate_stage ~rung ~assignment rewritten in
      match alloc with
      | Some a when a.Regalloc.Alloc.spill_count > 0 && config.reschedule_after_spill ->
          (* Spill-and-reschedule: the allocator rewrote the body, so the
             kernel we scheduled no longer matches the code we would emit.
             Re-derive the clustered kernel over the spilled body. *)
          let* sloop =
            match
              Ir.Loop.make ~depth:(Ir.Loop.depth loop) ~live_out:a.Regalloc.Alloc.live_out
                ~trip_count:(Ir.Loop.trip_count loop) ~name:(Ir.Loop.name loop)
                a.Regalloc.Alloc.code
            with
            | l -> Ok l
            | exception Invalid_argument msg ->
                stage_fail Verify.Stage_error.Allocation
                  ("spill-rewritten body is malformed: " ^ msg)
          in
          let ddg'' = Ddg.Graph.of_loop ~latency:m.latency sloop in
          let* cluster_of' =
            match Partition.Driver.cluster_map a.Regalloc.Alloc.assignment sloop with
            | Ok f -> Ok f
            | Error msg -> stage_fail ~code:"PT001" Verify.Stage_error.Partitioning msg
          in
          let opsc, cpc = cluster_loads cluster_of' a.Regalloc.Alloc.code in
          let mii' =
            max
              (Ddg.Minii.res_mii_clustered ~machine:m ~ops_per_cluster:opsc
                 ~copies_per_cluster:cpc)
              (Ddg.Minii.rec_mii ddg'')
          in
          let* clustered' =
            match schedule_clustered ~budget ~cluster_of:cluster_of' ~mii:mii' ddg'' with
            | Some o -> Ok o
            | None ->
                stage_fail Verify.Stage_error.Clustered_schedule
                  (Printf.sprintf
                     "no feasible II for the spill-rewritten body (MII %d, budget_ratio %d)"
                     mii' budget)
            | exception Invalid_argument msg ->
                stage_fail Verify.Stage_error.Clustered_schedule msg
          in
          let kernel' = hooks.on_kernel clustered'.Sched.Modulo.kernel in
          finish
            {
              loop; machine = m; rewritten = sloop;
              assignment = a.Regalloc.Alloc.assignment;
              code = Kernel { kernel = kernel'; ii = clustered'.Sched.Modulo.ii; ideal_ii };
              alloc = Some a; rung = mk_rung ~respilled:true;
              n_copies = ins.Partition.Copies.n_copies;
              spill_count = a.Regalloc.Alloc.spill_count; attempts = []; diags = [];
            }
      | _ ->
          finish
            {
              loop; machine = m; rewritten;
              assignment =
                (match alloc with
                | Some a -> a.Regalloc.Alloc.assignment
                | None -> assignment);
              code = Kernel { kernel; ii = clustered.Sched.Modulo.ii; ideal_ii };
              alloc; rung = mk_rung ~respilled:false;
              n_copies = ins.Partition.Copies.n_copies;
              spill_count =
                (match alloc with Some a -> a.Regalloc.Alloc.spill_count | None -> 0);
              attempts = []; diags = [];
            }
    in
    match result with
    | Ok r -> Some r
    | Error (stage, code, detail) ->
        Obs.Trace.incr obs ~label:rung Obs.Counter.Ladder_rung_failed 1;
        log ?code ~rung stage detail;
        None
  in
  (* The last rung: flat single-bank list schedule — immune to II budgets,
     recurrence circuits and inter-bank copies. *)
  let attempt_flat () =
    let rung = rung_name Non_pipelined in
    Obs.Trace.span obs "ladder.rung" ~attrs:[ ("rung", rung) ] @@ fun () ->
    Obs.Trace.incr obs ~label:rung Obs.Counter.Ladder_rung_entered 1;
    let result =
      let* () = guard Verify.Stage_error.Copy_insertion in
      let assignment0 = single_bank_assignment loop in
      let* ins =
        match Partition.Copies.insert_loop ~machine:m ~assignment:assignment0 loop with
        | ins -> Ok ins
        | exception Invalid_argument msg -> stage_fail Verify.Stage_error.Copy_insertion msg
      in
      let assignment = hooks.on_assignment ins.Partition.Copies.assignment in
      let rewritten = hooks.on_rewritten ins.Partition.Copies.loop in
      let ddg' = Ddg.Graph.of_loop ~latency:m.latency rewritten in
      let* cluster_of =
        match Partition.Driver.cluster_map assignment rewritten with
        | Ok f -> Ok f
        | Error msg -> stage_fail ~code:"PT001" Verify.Stage_error.Partitioning msg
      in
      let* sched =
        match Sched.List_sched.schedule ~cluster_of ~machine:m ddg' with
        | s -> Ok s
        | exception Invalid_argument msg ->
            stage_fail Verify.Stage_error.Clustered_schedule msg
      in
      let* () = guard Verify.Stage_error.Allocation in
      let* alloc = allocate_stage ~rung ~assignment rewritten in
      let assignment =
        match alloc with Some a -> a.Regalloc.Alloc.assignment | None -> assignment
      in
      (* Spilled flat code keeps its schedule for the unspilled ops only;
         re-list-schedule the spilled body so code and schedule agree. *)
      let* rewritten, sched =
        match alloc with
        | Some a when a.Regalloc.Alloc.spill_count > 0 -> (
            match
              Ir.Loop.make ~depth:(Ir.Loop.depth loop) ~live_out:a.Regalloc.Alloc.live_out
                ~trip_count:(Ir.Loop.trip_count loop) ~name:(Ir.Loop.name loop)
                a.Regalloc.Alloc.code
            with
            | exception Invalid_argument msg ->
                stage_fail Verify.Stage_error.Allocation
                  ("spill-rewritten body is malformed: " ^ msg)
            | sloop -> (
                let ddg'' = Ddg.Graph.of_loop ~latency:m.latency sloop in
                match Partition.Driver.cluster_map assignment sloop with
                | Error msg -> stage_fail ~code:"PT001" Verify.Stage_error.Partitioning msg
                | Ok cluster_of' -> (
                    match Sched.List_sched.schedule ~cluster_of:cluster_of' ~machine:m ddg'' with
                    | s -> Ok (sloop, s)
                    | exception Invalid_argument msg ->
                        stage_fail Verify.Stage_error.Clustered_schedule msg)))
        | _ -> Ok (rewritten, sched)
      in
      finish
        {
          loop; machine = m; rewritten; assignment;
          code = Flat sched; alloc; rung = Non_pipelined;
          n_copies = ins.Partition.Copies.n_copies;
          spill_count = (match alloc with Some a -> a.Regalloc.Alloc.spill_count | None -> 0);
          attempts = []; diags = [];
        }
    in
    match result with
    | Ok r -> Some r
    | Error (stage, code, detail) ->
        Obs.Trace.incr obs ~label:rung Obs.Counter.Ladder_rung_failed 1;
        log ?code ~rung stage detail;
        None
  in
  (* --- ladder execution ------------------------------------------- *)
  let ir_diags = Verify.Ir_check.loop loop in
  if Verify.Diag.has_errors ir_diags then
    (* Malformed input: fail cleanly with the analyzer's own code; no rung
       can repair the source body. *)
    Error (Verify.Stage_error.of_diags ~stage:Verify.Stage_error.Ir_input ~subject ir_diags)
  else begin
    let ddg = Ddg.Graph.of_loop ~latency:m.latency loop in
    let ideal =
      let rec go = function
        | [] -> None
        | b :: rest -> (
            let outcome =
              match config.scheduler with
              | Partition.Driver.Rau -> Sched.Modulo.ideal ?obs ~budget_ratio:b ~machine:m ddg
              | Partition.Driver.Swing -> Sched.Swing.ideal ?obs ~machine:m ddg
            in
            match outcome with
            | Some o -> Some o
            | None ->
                log ~rung:"ideal" Verify.Stage_error.Ideal_schedule
                  (Printf.sprintf "no feasible II (budget_ratio %d)" b);
                if cancel () then None else go rest)
      in
      go budgets
    in
    let modulo_rungs =
      match ideal with
      | None -> []
      | Some ideal ->
          let per_partitioner =
            List.concat_map
              (fun p -> List.map (fun b -> (Some p, b)) budgets)
              config.partitioners
          in
          (* On a monolithic machine every partitioner already lands in the
             single bank; the merge rung would be a duplicate. *)
          let single =
            if m.clusters = 1 then [] else List.map (fun b -> (None, b)) budgets
          in
          List.map
            (fun (p, b) -> fun () -> attempt_modulo ~ideal ~ddg ~partitioner:p ~budget:b)
            (per_partitioner @ single)
    in
    let rungs =
      modulo_rungs @ (if config.allow_non_pipelined then [ attempt_flat ] else [])
    in
    let rec descend = function
      | [] when cancel () -> deadline_error ()
      | [] -> (
          match !attempts with
          | [] ->
              Error
                (Verify.Stage_error.make ~stage:Verify.Stage_error.Clustered_schedule ~subject
                   "the fallback ladder is empty (no rungs enabled)")
          | (last : Verify.Stage_error.attempt) :: _ ->
              Error
                (Verify.Stage_error.make
                   ~attempts:(List.rev !attempts)
                   ~code:last.Verify.Stage_error.at_code
                   ~stage:last.Verify.Stage_error.at_stage ~subject
                   (Printf.sprintf "every rung of the fallback ladder failed (%d attempts); last: %s"
                      (List.length !attempts) last.Verify.Stage_error.detail)))
      | rung :: rest ->
          if cancel () then deadline_error ()
          else ( match rung () with Some r -> Ok r | None -> descend rest)
    in
    if cancel () then deadline_error () else descend rungs
  end
