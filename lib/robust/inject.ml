type fault =
  | Corrupt_kernel
  | Drop_copy
  | Scramble_assignment
  | Shrink_banks of int
  | Malform_ir

let fault_name = function
  | Corrupt_kernel -> "corrupt-kernel"
  | Drop_copy -> "drop-copy"
  | Scramble_assignment -> "scramble-assignment"
  | Shrink_banks n -> Printf.sprintf "shrink-banks(%d)" n
  | Malform_ir -> "malform-ir"

let recoverable = [ Corrupt_kernel; Drop_copy; Scramble_assignment ]
let fatal = [ Malform_ir; Shrink_banks 1 ]
let all = recoverable @ fatal

(* Service-level faults: delivered against a running [rbp serve], not
   through the driver hooks. The variants live here so the serve and
   bombard layers share one catalog (and one spelling) of what can be
   thrown at the daemon; the behaviors themselves are implemented
   client-side in the bombardment harness ([Serve.Bombard]) or, for
   [Crash_worker], by a poison marker the server only honors when fault
   injection is explicitly enabled. *)
type service_fault =
  | Garbage_frame  (** send bytes that are not a protocol frame *)
  | Slow_loris  (** dribble a valid frame a few bytes at a time *)
  | Disconnect  (** close the connection before reading the reply *)
  | Deadline_storm  (** request an impossible deadline, then retry sanely *)
  | Crash_worker  (** poison request that kills its worker domain *)

let service_fault_name = function
  | Garbage_frame -> "garbage-frame"
  | Slow_loris -> "slow-loris"
  | Disconnect -> "disconnect"
  | Deadline_storm -> "deadline-storm"
  | Crash_worker -> "crash-worker"

let service_fault_of_name = function
  | "garbage-frame" -> Some Garbage_frame
  | "slow-loris" -> Some Slow_loris
  | "disconnect" -> Some Disconnect
  | "deadline-storm" -> Some Deadline_storm
  | "crash-worker" -> Some Crash_worker
  | _ -> None

let all_service = [ Garbage_frame; Slow_loris; Disconnect; Deadline_storm; Crash_worker ]

type armed = { hooks : Driver.hooks; fired : unit -> fault list }

let arm ~prng plan =
  let fired = ref [] (* newest first *) in
  let mark f = fired := f :: !fired in
  let armed f = List.mem f plan && not (List.mem f !fired) in
  (* Captured by [on_machine], which the driver always calls first. *)
  let clusters = ref 1 in
  let on_machine (m : Mach.Machine.t) =
    clusters := m.clusters;
    match List.find_opt (function Shrink_banks _ -> true | _ -> false) plan with
    | Some (Shrink_banks n as f) when armed f ->
        mark f;
        Mach.Machine.make ~name:m.name ~copy_ports:m.copy_ports ~busses:m.busses
          ~regs_per_bank:n ~latency:m.latency ~fu_mix:m.fu_mix ~clusters:m.clusters
          ~fus_per_cluster:m.fus_per_cluster ~copy_model:m.copy_model ()
    | _ -> m
  in
  let on_loop loop =
    if armed Malform_ir then begin
      mark Malform_ir;
      (* [Ir.Loop.make] validates op ids and sources but not live-out;
         the phantom register is exactly what IR004 exists to catch. *)
      let phantom =
        Ir.Vreg.make ~name:"phantom" ~id:(Ir.Loop.max_vreg_id loop + 1)
          ~cls:Mach.Rclass.Int ()
      in
      Ir.Loop.make ~depth:(Ir.Loop.depth loop)
        ~live_out:(Ir.Vreg.Set.add phantom (Ir.Loop.live_out loop))
        ~trip_count:(Ir.Loop.trip_count loop) ~name:(Ir.Loop.name loop)
        (Ir.Loop.ops loop)
    end
    else loop
  in
  let on_assignment a =
    if armed Scramble_assignment && !clusters > 1 then
      match Ir.Vreg.Map.bindings a with
      | [] -> a
      | bindings ->
          mark Scramble_assignment;
          let r, b = Util.Prng.choose prng bindings in
          let bump = 1 + Util.Prng.int prng (!clusters - 1) in
          Ir.Vreg.Map.add r ((b + bump) mod !clusters) a
    else a
  in
  let on_rewritten loop =
    if armed Drop_copy then
      match List.filter Ir.Op.is_copy (Ir.Loop.ops loop) with
      | [] -> loop (* no copies to drop; stays armed for a later rung *)
      | copies -> (
          let c = Util.Prng.choose prng copies in
          match (Ir.Op.dst c, Ir.Op.srcs c) with
          | Some d, s :: _ ->
              mark Drop_copy;
              (* Rewire consumers to the copied source so the body stays
                 well-formed but the cross-bank flow the copy existed
                 for is naked again. *)
              let subst = Ir.Vreg.Map.singleton d s in
              let ops =
                List.filter_map
                  (fun o ->
                    if Ir.Op.id o = Ir.Op.id c then None
                    else Some (Ir.Op.substitute o subst))
                  (Ir.Loop.ops loop)
              in
              Ir.Loop.with_ops loop ops
          | _ -> loop)
    else loop
  in
  let on_kernel k =
    if armed Corrupt_kernel then begin
      let ps = Sched.Kernel.placements k in
      if List.length ps >= 2 then begin
        mark Corrupt_kernel;
        let i = Util.Prng.int prng (List.length ps) in
        Sched.Kernel.make ~ii:(Sched.Kernel.ii k)
          (List.filteri (fun j _ -> j <> i) ps)
      end
      else k
    end
    else k
  in
  {
    hooks = { Driver.on_loop; on_machine; on_assignment; on_rewritten; on_kernel };
    fired = (fun () -> List.rev !fired);
  }
