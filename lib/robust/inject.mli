(** Deterministic fault injection for the resilient driver.

    Each fault perturbs one stage artifact through the {!Driver.hooks}
    seam, seeded by {!Util.Prng} so a (seed, trial) pair replays
    identically. Faults are {e fire-once}: a fault corrupts the first
    artifact it applies to and then disarms, so transient faults model a
    single bad stage output — the ladder's next rung sees clean
    artifacts and recovers. Persistent faults (a shrunken register file,
    malformed source IR) corrupt what the driver is given before the
    ladder starts, so recovery means a clean structured failure or a
    rung that genuinely tolerates the condition (spilling, surrender).

    Fault → expected diagnostic:
    - {!Corrupt_kernel} drops one kernel placement → SCH001 (unscheduled
      op) from {!Verify.Sched_check};
    - {!Drop_copy} deletes an inter-bank copy and wires its consumers to
      the copied source → PT003 (cross-bank operand) from
      {!Verify.Partition_check};
    - {!Scramble_assignment} moves one register to another bank after
      copy insertion → PT003 / AL005;
    - {!Shrink_banks} rebuilds the machine with tiny register banks →
      spill-and-reschedule, or a structured Allocation failure
      (AL-coded) when the pressure is irreducible;
    - {!Malform_ir} adds a phantom live-out register → IR004 from the
      driver's input gate. *)

type fault =
  | Corrupt_kernel        (** drop a placement from the clustered kernel *)
  | Drop_copy             (** delete a copy op, rewire consumers to its source *)
  | Scramble_assignment   (** move one register's bank after copy insertion *)
  | Shrink_banks of int   (** rebuild the machine with [n] registers per bank *)
  | Malform_ir            (** add an undefined register to the loop's live-out *)

val fault_name : fault -> string

val recoverable : fault list
(** Transient stage corruptions the ladder must recover from:
    [Corrupt_kernel; Drop_copy; Scramble_assignment]. *)

val fatal : fault list
(** Input corruptions the driver must fail cleanly on (structured error,
    right code, no exception): [Malform_ir; Shrink_banks 1]. *)

val all : fault list

type service_fault =
  | Garbage_frame   (** send bytes that are not a protocol frame *)
  | Slow_loris      (** dribble a valid frame a few bytes at a time *)
  | Disconnect      (** close the connection before reading the reply *)
  | Deadline_storm  (** request an impossible deadline, then retry sanely *)
  | Crash_worker    (** poison request that kills its worker domain *)
(** Faults delivered against a running [rbp serve] rather than through
    the driver hooks. The daemon must answer every one with a structured
    reply (or survive the disconnect): [Garbage_frame] → a [bad_frame]
    reply, [Slow_loris] → either the completed frame's reply or a read
    timeout, [Disconnect] → a dropped reply counted on
    [serve.disconnects], [Deadline_storm] → a [timeout] reply carrying
    {!Driver.deadline_code}, [Crash_worker] → a restarted worker domain
    and (after retries) a quarantine reply. The behaviors live in the
    bombardment harness; this catalog exists so serve, bombard and the
    CLI share one spelling of each fault. *)

val service_fault_name : service_fault -> string
val service_fault_of_name : string -> service_fault option

val all_service : service_fault list

type armed = {
  hooks : Driver.hooks;
  fired : unit -> fault list;
      (** the faults that actually found an artifact to corrupt, in
          firing order — a planned fault may not fire (e.g. [Drop_copy]
          on a loop that needed no copies) *)
}

val arm : prng:Util.Prng.t -> fault list -> armed
(** Arm every fault in the plan over one fresh set of hooks. Randomness
    (which placement, which copy, which register, how far to bump) draws
    from [prng] at fire time. *)
