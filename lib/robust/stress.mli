(** Deterministic stress harness: fault-injected trials over the
    workload suite, with {!Verify} as an independent oracle.

    One trial = one (loop, machine, fault plan) triple drawn from a
    split of the master PRNG, run through {!Driver.run} with
    {!Inject.arm}'s hooks. The harness audits every outcome:

    - {b Clean} — no fault fired (or the fault found nothing to
      corrupt) and the driver produced verified code first try;
    - {b Recovered} — a fault fired, and the driver still produced code
      that the independently re-run analyzers accept (attempt log shows
      the rung that saved it);
    - {b Failed_clean} — the driver surrendered with a structured
      {!Verify.Stage_error} carrying a stage and diagnostic code, and
      only {e fatal} faults (or none) fired — the contract for
      unsalvageable input;
    - {b Unrecovered} — a structured failure although only recoverable
      (transient) faults fired: the ladder should have caught it;
    - {b Violation} — the driver raised, or returned [Ok] code the
      oracle rejects. Never acceptable.

    Same seed, same trial count → byte-identical report. *)

type outcome =
  | Clean
  | Recovered
  | Failed_clean
  | Unrecovered
  | Violation of string

type trial = {
  index : int;
  loop_name : string;
  machine_name : string;
  plan : Inject.fault list;
  fired : Inject.fault list;
  rung : Driver.rung option;     (** the rung that produced code, on success *)
  n_attempts : int;              (** failed attempts before success/surrender *)
  error : Verify.Stage_error.t option;
  outcome : outcome;
}

type summary = {
  trials : trial list;           (** in trial order *)
  clean : int;
  recovered : int;
  failed_clean : int;
  unrecovered : trial list;
  violations : trial list;
}

val run :
  ?obs:Obs.Trace.t ->
  ?jobs:int ->
  ?job_clock:(int -> Obs.Clock.t) ->
  ?config:Driver.config ->
  ?include_fatal:bool ->
  ?fault_rate:float ->
  seed:int ->
  trials:int ->
  unit ->
  summary
(** [include_fatal] (default true) adds {!Inject.fatal} faults to the
    drawing pool; [fault_rate] (default 0.9) is the chance a trial
    injects any fault at all — the rest exercise the clean path.
    [obs] is threaded into every trial's {!Driver.run}.

    [jobs] (default 1 — the exact serial path; 0 = one per core) shards
    the trials across an {!Engine.Pool}. Every trial's inputs are drawn
    from the master PRNG serially {e before} any trial runs, so the
    summary is byte-identical for every [jobs] value; trials are never
    cached (the fault plan is the point). *)

val outcome_name : outcome -> string
val trial_line : trial -> string
(** One pinned line per trial: index, loop, machine, plan, fired
    faults, outcome, rung or error code. *)

val report : ?verbose:bool -> summary -> string
(** [verbose] prints every trial line; otherwise only non-clean trials
    plus the totals line. Ends with the totals line either way. *)

val exit_code : summary -> int
(** 0 — no unrecovered trials and no violations; 1 — unrecovered
    structured failures; 2 — violations (an exception escaped or
    unverified code was emitted). *)
