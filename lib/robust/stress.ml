type outcome =
  | Clean
  | Recovered
  | Failed_clean
  | Unrecovered
  | Violation of string

type trial = {
  index : int;
  loop_name : string;
  machine_name : string;
  plan : Inject.fault list;
  fired : Inject.fault list;
  rung : Driver.rung option;
  n_attempts : int;
  error : Verify.Stage_error.t option;
  outcome : outcome;
}

type summary = {
  trials : trial list;
  clean : int;
  recovered : int;
  failed_clean : int;
  unrecovered : trial list;
  violations : trial list;
}

let outcome_name = function
  | Clean -> "clean"
  | Recovered -> "recovered"
  | Failed_clean -> "failed-clean"
  | Unrecovered -> "unrecovered"
  | Violation _ -> "violation"

let faults_str = function
  | [] -> "-"
  | fs -> String.concat "," (List.map Inject.fault_name fs)

let pick_machine prng =
  let clusters = Util.Prng.choose prng [ 2; 4; 8 ] in
  let fus = Util.Prng.choose prng [ 1; 2 ] in
  let copy_model = Util.Prng.choose prng [ Mach.Machine.Embedded; Mach.Machine.Copy_unit ] in
  Mach.Machine.make
    ~name:
      (Printf.sprintf "c%d-f%d-%s" clusters fus (Mach.Machine.copy_model_name copy_model))
    ~clusters ~fus_per_cluster:fus ~copy_model ()

let classify ~fired outcome_of_run =
  match outcome_of_run with
  | `Raised msg -> Violation ("driver raised: " ^ msg)
  | `Ok (r : Driver.result) -> (
      (* Independent oracle: never trust the driver's own verdict. *)
      match Verify.Diag.errors (Driver.verify_diags r) with
      | first :: _ ->
          Violation
            (Printf.sprintf "emitted code fails verification: %s"
               (Verify.Diag.to_string first))
      | [] -> if fired = [] then Clean else Recovered)
  | `Error (_ : Verify.Stage_error.t) ->
      (* A structured surrender is the contract for unsalvageable input
         (fatal faults); with only transient faults — or none — the
         ladder had a clean rung available and should have taken it. *)
      if fired = [] || List.exists (fun f -> List.mem f Inject.recoverable) fired then
        Unrecovered
      else Failed_clean

type drawn = {
  trial_prng : Util.Prng.t;
  trial_loop : Ir.Loop.t;
  trial_machine : Mach.Machine.t;
  trial_plan : Inject.fault list;
}

let run ?obs ?(jobs = 1) ?job_clock ?(config = Driver.default_config)
    ?(include_fatal = true) ?(fault_rate = 0.9) ~seed ~trials () =
  let pool = if include_fatal then Inject.all else Inject.recoverable in
  let loops = Workload.Suite.loops () in
  let master = Util.Prng.create seed in
  (* Draw every trial's inputs serially first: [Prng.split] mutates the
     master, so the split order — hence the whole suite — must not
     depend on [jobs]. Each trial then owns its private split. *)
  let inputs =
    let a = Array.make (max trials 0) None in
    for index = 0 to trials - 1 do
      let prng = Util.Prng.split master in
      let loop = Util.Prng.choose prng loops in
      let machine = pick_machine prng in
      let plan =
        if Util.Prng.chance prng fault_rate then [ Util.Prng.choose prng pool ] else []
      in
      a.(index) <-
        Some { trial_prng = prng; trial_loop = loop; trial_machine = machine; trial_plan = plan }
    done;
    Array.map (function Some d -> d | None -> assert false) a
  in
  let js =
    Array.map
      (fun d ->
        {
          (* Fault plans are drawn fresh each run; trials are never cached. *)
          Engine.Run.key = None;
          work =
            (fun tr ->
              let armed = Inject.arm ~prng:d.trial_prng d.trial_plan in
              let run_result =
                match
                  Driver.run ?obs:tr ~config ~hooks:armed.Inject.hooks
                    ~machine:d.trial_machine d.trial_loop
                with
                | Ok r -> `Ok r
                | Error e -> `Error e
                | exception exn -> `Raised (Printexc.to_string exn)
              in
              (run_result, armed.Inject.fired ()));
        })
      inputs
  in
  let outs, _stats = Engine.Run.map ?obs ?job_clock ~jobs js in
  let results = ref [] in
  for index = 0 to trials - 1 do
    let d = inputs.(index) in
    let run_result, fired =
      match outs.(index) with
      | Ok (r, f) -> (r, f)
      | Error exn ->
          (* Engine-level backstop: a trial that somehow escaped the
             in-job catch damns only itself, as a violation. *)
          (`Raised (Printexc.to_string exn), [])
    in
    let outcome = classify ~fired run_result in
    let rung, n_attempts, error =
      match run_result with
      | `Ok r -> (Some r.Driver.rung, List.length r.Driver.attempts, None)
      | `Error e -> (None, List.length e.Verify.Stage_error.attempts, Some e)
      | `Raised _ -> (None, 0, None)
    in
    results :=
      {
        index;
        loop_name = Ir.Loop.name d.trial_loop;
        machine_name = d.trial_machine.Mach.Machine.name;
        plan = d.trial_plan;
        fired;
        rung;
        n_attempts;
        error;
        outcome;
      }
      :: !results
  done;
  let trials = List.rev !results in
  let count o = List.length (List.filter (fun t -> t.outcome = o) trials) in
  {
    trials;
    clean = count Clean;
    recovered = count Recovered;
    failed_clean = count Failed_clean;
    unrecovered = List.filter (fun t -> t.outcome = Unrecovered) trials;
    violations =
      List.filter (fun t -> match t.outcome with Violation _ -> true | _ -> false) trials;
  }

let trial_line t =
  let detail =
    match (t.outcome, t.rung, t.error) with
    | Violation msg, _, _ -> msg
    | _, Some rung, _ ->
        Printf.sprintf "%s after %d failed attempt(s)" (Driver.rung_name rung) t.n_attempts
    | _, None, Some e ->
        Printf.sprintf "%s [%s] after %d failed attempt(s)"
          (Verify.Stage_error.stage_name e.Verify.Stage_error.stage)
          e.Verify.Stage_error.code t.n_attempts
    | _, None, None -> "?"
  in
  Printf.sprintf "#%03d %-14s %-18s plan=%-20s fired=%-20s %-12s %s" t.index t.loop_name
    t.machine_name (faults_str t.plan) (faults_str t.fired) (outcome_name t.outcome)
    detail

let report ?(verbose = false) s =
  let lines =
    List.filter_map
      (fun t ->
        match t.outcome with
        | Clean | Recovered | Failed_clean when not verbose -> None
        | _ -> Some (trial_line t))
      s.trials
  in
  let totals =
    Printf.sprintf
      "totals: %d trials, %d clean, %d recovered, %d failed-clean, %d unrecovered, %d violations"
      (List.length s.trials) s.clean s.recovered s.failed_clean
      (List.length s.unrecovered) (List.length s.violations)
  in
  String.concat "\n" (lines @ [ totals ])

let exit_code s =
  if s.violations <> [] then 2 else if s.unrecovered <> [] then 1 else 0
