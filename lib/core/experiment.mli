(** The paper's experiments as runnable configurations.

    The meta-model: 16 general-purpose FUs grouped as N ∈ {2,4,8}
    clusters, embedded or copy-unit copy support, Section 6.1 latencies.
    Each configuration pipelines the whole suite and aggregates
    {!Metrics}. *)

type config = {
  label : string;        (** e.g. ["2x8 embedded"] *)
  clusters : int;
  copy_model : Mach.Machine.copy_model;
  machine : Mach.Machine.t;
}

val paper_configs : config list
(** The six columns of Tables 1-2: clusters 2, 4, 8 × both copy models,
    in the paper's column order (per cluster count: embedded first). *)

val config_for : clusters:int -> copy_model:Mach.Machine.copy_model -> config

type run = {
  config : config;
  metrics : Metrics.loop_metrics list;  (** successfully pipelined loops *)
  failures : (string * Verify.Stage_error.t) list;  (** loop name, structured error *)
  cache_hits : int;  (** loops served from the result cache (0 without one) *)
}

val run_config :
  ?obs:Obs.Trace.t ->
  ?jobs:int ->
  ?cache:Engine.Cache.t ->
  ?job_clock:(int -> Obs.Clock.t) ->
  ?partitioner:Partition.Driver.partitioner ->
  ?loops:Ir.Loop.t list ->
  config ->
  run
(** Pipelines every loop ([loops] defaults to the 211-loop suite).
    [obs] (default off) traces one [experiment.config] span per call
    with a [pipeline] child per loop. [jobs] (default 1 — the exact
    serial path; 0 = one per core) shards the loops across an
    {!Engine.Pool}; metrics, failures, and the folded [obs] totals are
    identical for every [jobs] value. [cache] keys each
    (loop, machine, options) triple by content ({!Batch.job_key}). *)

val run_all :
  ?obs:Obs.Trace.t ->
  ?jobs:int ->
  ?cache:Engine.Cache.t ->
  ?job_clock:(int -> Obs.Clock.t) ->
  ?partitioner:Partition.Driver.partitioner ->
  ?loops:Ir.Loop.t list ->
  ?configs:config list ->
  unit ->
  run list

val ideal_ipc : ?loops:Ir.Loop.t list -> unit -> float
(** Mean IPC of the ideal 16-wide pipelines — Table 1's "Ideal" row. *)
