type config_metrics = {
  label : string;
  clusters : int;
  copy_model : string;
  loops_ok : int;
  failures : int;
  mean_ipc_clustered : float;
  arith_mean_degradation : float;
  harmonic_mean_degradation : float;
  pct_no_degradation : float;
}

type serve_latency = {
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  degraded_p99_ms : float option;
}

type exact_geometry = {
  geo_label : string;
  geo_loops : int;
  optimal : int;
  bound : int;
  exhausted : int;
  greedy_optimal_pct : float;
  mean_exact_ii : float;
  mean_greedy_ii : float;
}

type exact_metrics = {
  budget : int;
  max_vregs : int;
  geometries : exact_geometry list;
}

type doc = {
  seed : int;
  loops : int;
  ideal_ipc : float;
  configs : config_metrics list;
  jobs : int option;
  cache_hits : int option;
  wall_s : float option;
  serve : serve_latency option;
  exact : exact_metrics option;
}

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name conv j =
  match Option.bind (Obs.Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %S" name)

let parse_config j =
  let* label = field "label" Obs.Json.to_str j in
  let* clusters = field "clusters" Obs.Json.to_int j in
  let* copy_model = field "copy_model" Obs.Json.to_str j in
  let* loops_ok = field "loops_ok" Obs.Json.to_int j in
  let* failures = field "failures" Obs.Json.to_int j in
  let* mean_ipc_clustered = field "mean_ipc_clustered" Obs.Json.to_num j in
  let* arith_mean_degradation = field "arith_mean_degradation" Obs.Json.to_num j in
  let* harmonic_mean_degradation = field "harmonic_mean_degradation" Obs.Json.to_num j in
  let* pct_no_degradation = field "pct_no_degradation" Obs.Json.to_num j in
  Ok
    {
      label; clusters; copy_model; loops_ok; failures; mean_ipc_clustered;
      arith_mean_degradation; harmonic_mean_degradation; pct_no_degradation;
    }

let parse text =
  let* j = Obs.Json.of_string text in
  let* schema = field "schema" Obs.Json.to_str j in
  if schema <> "rbp-bench/1" then
    Error (Printf.sprintf "unsupported schema %S (want \"rbp-bench/1\")" schema)
  else
    let* seed = field "seed" Obs.Json.to_int j in
    let* loops = field "loops" Obs.Json.to_int j in
    let* ideal_ipc = field "ideal_ipc" Obs.Json.to_num j in
    let* configs = field "configs" Obs.Json.to_list j in
    let* configs =
      List.fold_left
        (fun acc c ->
          let* acc = acc in
          let* c = parse_config c in
          Ok (c :: acc))
        (Ok []) configs
    in
    (* Engine telemetry is additive and host-dependent: absent in older
       documents, never compared for regressions. *)
    let opt conv name = Option.bind (Obs.Json.member name j) conv in
    (* The serve object (written by [rbp bombard --json]) is likewise
       additive, but when BOTH documents carry latency quantiles they
       are gated — that is the tail-latency contract of the service. *)
    let serve =
      Option.bind (Obs.Json.member "serve" j) (fun s ->
          let f name = Option.bind (Obs.Json.member name s) Obs.Json.to_num in
          match (f "p50_ms", f "p95_ms", f "p99_ms", f "max_ms") with
          | Some p50_ms, Some p95_ms, Some p99_ms, Some max_ms ->
              let degraded_p99_ms =
                Option.bind (Obs.Json.member "degraded" s) (fun d ->
                    Option.bind (Obs.Json.member "p99_ms" d) Obs.Json.to_num)
              in
              Some { p50_ms; p95_ms; p99_ms; max_ms; degraded_p99_ms }
          | _ -> None)
    in
    (* The exact object (written by [rbp exact --json]) follows the same
       additive contract: gated only when both documents carry it. *)
    let exact =
      Option.bind (Obs.Json.member "exact" j) (fun e ->
          let i name = Option.bind (Obs.Json.member name e) Obs.Json.to_int in
          match (i "budget", i "max_vregs", Option.bind (Obs.Json.member "geometries" e) Obs.Json.to_list) with
          | Some budget, Some max_vregs, Some geos ->
              let geo g =
                let gi name = Option.bind (Obs.Json.member name g) Obs.Json.to_int in
                let gf name = Option.bind (Obs.Json.member name g) Obs.Json.to_num in
                match
                  ( Option.bind (Obs.Json.member "label" g) Obs.Json.to_str,
                    gi "loops", gi "optimal", gi "bound", gi "exhausted",
                    gf "greedy_optimal_pct", gf "mean_exact_ii", gf "mean_greedy_ii" )
                with
                | ( Some geo_label, Some geo_loops, Some optimal, Some bound,
                    Some exhausted, Some greedy_optimal_pct, Some mean_exact_ii,
                    Some mean_greedy_ii ) ->
                    Some
                      {
                        geo_label; geo_loops; optimal; bound; exhausted;
                        greedy_optimal_pct; mean_exact_ii; mean_greedy_ii;
                      }
                | _ -> None
              in
              let parsed = List.filter_map geo geos in
              if List.length parsed = List.length geos then
                Some { budget; max_vregs; geometries = parsed }
              else None
          | _ -> None)
    in
    Ok
      {
        seed; loops; ideal_ipc; configs = List.rev configs;
        jobs = opt Obs.Json.to_int "jobs";
        cache_hits = opt Obs.Json.to_int "cache_hits";
        wall_s = opt Obs.Json.to_num "wall_s";
        serve;
        exact;
      }

type thresholds = {
  ipc_rel_drop : float;
  degradation_rise : float;
  pct_drop : float;
  latency_rel_rise : (float * float) list;
  latency_floor_ms : float;
}

let default_thresholds =
  {
    ipc_rel_drop = 0.02;
    degradation_rise = 2.0;
    pct_drop = 3.0;
    (* Latency is host-dependent, so the per-quantile guards are
       deliberately loose — they catch order-of-magnitude blowups
       (a lock convoy, an accidental O(n^2) in the reply path), not
       scheduler jitter. Tails get more headroom than the median. *)
    latency_rel_rise = [ (0.50, 2.0); (0.95, 3.0); (0.99, 4.0) ];
    latency_floor_ms = 5.0;
  }

type finding = {
  config : string;
  metric : string;
  old_value : float;
  new_value : float;
  regressed : bool;
}

let diff ?(thresholds = default_thresholds) ~baseline ~current () =
  if baseline.seed <> current.seed then
    Error
      (Printf.sprintf "incomparable runs: seed %d vs %d" baseline.seed current.seed)
  else if baseline.loops <> current.loops then
    Error
      (Printf.sprintf "incomparable runs: %d vs %d suite loops" baseline.loops current.loops)
  else begin
    let t = thresholds in
    let findings = ref [] in
    let add config metric old_value new_value regressed =
      findings := { config; metric; old_value; new_value; regressed } :: !findings
    in
    let ipc_drop old_v new_v = old_v > 0.0 && (old_v -. new_v) /. old_v > t.ipc_rel_drop in
    add "suite" "ideal_ipc" baseline.ideal_ipc current.ideal_ipc
      (ipc_drop baseline.ideal_ipc current.ideal_ipc);
    let* () =
      List.fold_left
        (fun acc (b : config_metrics) ->
          let* () = acc in
          match List.find_opt (fun c -> c.label = b.label) current.configs with
          | None -> Error (Printf.sprintf "config %S missing from current run" b.label)
          | Some c ->
              let fi v = float_of_int v in
              (* Any lost loop or new failure is a regression outright:
                 the aggregate means silently change population when a
                 loop drops out, so thresholds cannot be trusted then. *)
              add b.label "loops_ok" (fi b.loops_ok) (fi c.loops_ok)
                (c.loops_ok < b.loops_ok);
              add b.label "failures" (fi b.failures) (fi c.failures)
                (c.failures > b.failures);
              add b.label "mean_ipc_clustered" b.mean_ipc_clustered c.mean_ipc_clustered
                (ipc_drop b.mean_ipc_clustered c.mean_ipc_clustered);
              add b.label "arith_mean_degradation" b.arith_mean_degradation
                c.arith_mean_degradation
                (c.arith_mean_degradation -. b.arith_mean_degradation > t.degradation_rise);
              add b.label "harmonic_mean_degradation" b.harmonic_mean_degradation
                c.harmonic_mean_degradation
                (c.harmonic_mean_degradation -. b.harmonic_mean_degradation
                 > t.degradation_rise);
              add b.label "pct_no_degradation" b.pct_no_degradation c.pct_no_degradation
                (b.pct_no_degradation -. c.pct_no_degradation > t.pct_drop);
              Ok ())
        (Ok ()) baseline.configs
    in
    let* () =
      match
        List.find_opt
          (fun (c : config_metrics) ->
            not (List.exists (fun (b : config_metrics) -> b.label = c.label) baseline.configs))
          current.configs
      with
      | Some c -> Error (Printf.sprintf "config %S missing from baseline" c.label)
      | None -> Ok ()
    in
    (match (baseline.serve, current.serve) with
    | Some b, Some c ->
        let rise q old_v new_v =
          let thr =
            match List.assoc_opt q t.latency_rel_rise with
            | Some thr -> thr
            | None -> infinity
          in
          new_v -. old_v > t.latency_floor_ms && new_v > old_v *. (1.0 +. thr)
        in
        add "serve" "latency_p50_ms" b.p50_ms c.p50_ms (rise 0.50 b.p50_ms c.p50_ms);
        add "serve" "latency_p95_ms" b.p95_ms c.p95_ms (rise 0.95 b.p95_ms c.p95_ms);
        add "serve" "latency_p99_ms" b.p99_ms c.p99_ms (rise 0.99 b.p99_ms c.p99_ms);
        (match (b.degraded_p99_ms, c.degraded_p99_ms) with
        | Some bd, Some cd -> add "serve" "degraded_p99_ms" bd cd (rise 0.99 bd cd)
        | _ -> ())
    | _ ->
        (* Additive: a document without quantiles (older baseline, plain
           bench run) simply isn't latency-gated. *)
        ());
    let* () =
      match (baseline.exact, current.exact) with
      | Some b, Some c ->
          (* Everything under "exact" is a deterministic, node-budgeted
             computation, so the runs are only comparable at identical
             budget and slice criterion — and once comparable, the gates
             are strict: losing a proven optimum, running out of budget
             where the baseline did not, or the proven mean II moving at
             all means the solver (or the code it measures) changed. *)
          if b.budget <> c.budget then
            Error (Printf.sprintf "incomparable runs: exact budget %d vs %d" b.budget c.budget)
          else if b.max_vregs <> c.max_vregs then
            Error
              (Printf.sprintf "incomparable runs: exact slice max_vregs %d vs %d"
                 b.max_vregs c.max_vregs)
          else
            List.fold_left
              (fun acc (bg : exact_geometry) ->
                let* () = acc in
                match
                  List.find_opt (fun g -> g.geo_label = bg.geo_label) c.geometries
                with
                | None ->
                    Error
                      (Printf.sprintf "exact geometry %S missing from current run"
                         bg.geo_label)
                | Some cg ->
                    let fi v = float_of_int v in
                    let pfx = "exact:" ^ bg.geo_label in
                    add pfx "loops" (fi bg.geo_loops) (fi cg.geo_loops)
                      (cg.geo_loops <> bg.geo_loops);
                    add pfx "optimal" (fi bg.optimal) (fi cg.optimal)
                      (cg.optimal < bg.optimal);
                    add pfx "exhausted" (fi bg.exhausted) (fi cg.exhausted)
                      (cg.exhausted > bg.exhausted);
                    add pfx "greedy_optimal_pct" bg.greedy_optimal_pct
                      cg.greedy_optimal_pct
                      (bg.greedy_optimal_pct -. cg.greedy_optimal_pct > t.pct_drop);
                    add pfx "mean_exact_ii" bg.mean_exact_ii cg.mean_exact_ii
                      (cg.mean_exact_ii -. bg.mean_exact_ii > 1e-9);
                    add pfx "mean_greedy_ii" bg.mean_greedy_ii cg.mean_greedy_ii
                      (cg.mean_greedy_ii -. bg.mean_greedy_ii > 1e-9);
                    Ok ())
              (Ok ()) b.geometries
      | _ ->
          (* Additive: pre-solver documents aren't exact-gated. *)
          Ok ()
    in
    Ok (List.rev !findings)
  end

let regressions findings = List.filter (fun f -> f.regressed) findings

let engine_note ~baseline ~current =
  let jobs_part =
    match (baseline.jobs, current.jobs) with
    | None, None -> None
    | b, c ->
        let show = function None -> "?" | Some j -> Printf.sprintf "-j %d" j in
        Some (Printf.sprintf "jobs %s -> %s" (show b) (show c))
  in
  let wall_part =
    match (baseline.wall_s, current.wall_s) with
    | Some b, Some c when b > 0.0 && c > 0.0 ->
        Some (Printf.sprintf "wall %.2fs -> %.2fs (%.2fx)" b c (b /. c))
    | _ -> None
  in
  let hits_part =
    Option.map (fun h -> Printf.sprintf "cache hits %d" h) current.cache_hits
  in
  match List.filter_map Fun.id [ jobs_part; wall_part; hits_part ] with
  | [] -> None
  | parts -> Some ("engine: " ^ String.concat ", " parts)

let render findings =
  let b = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "%-9s %-22s %-26s %g -> %g (%+g)\n"
           (if f.regressed then "REGRESSED" else "ok")
           f.config f.metric f.old_value f.new_value (f.new_value -. f.old_value)))
    findings;
  let n = List.length (regressions findings) in
  Buffer.add_string b
    (if n = 0 then "no regressions\n" else Printf.sprintf "%d regression(s)\n" n);
  Buffer.contents b
