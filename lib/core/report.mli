(** Rendering of the paper's tables and figures from experiment runs. *)

val table1 : ideal_ipc:float -> Experiment.run list -> Util.Table.t
(** "IPC of Clustered Software Pipelines": one column per configuration,
    an Ideal row and a Clustered row. *)

val table2 : Experiment.run list -> Util.Table.t
(** "Degradation Over Ideal Schedules — Normalized": arithmetic and
    harmonic mean rows. *)

val figure_histogram : Experiment.run -> Experiment.run -> title:string -> Util.Table.t
(** One of Figures 5-7: per-bucket percentage of loops for the embedded
    and copy-unit runs of one cluster count. *)

val ascii_histogram : Experiment.run -> Experiment.run -> title:string -> string
(** The same data as a bar chart for terminal reading. *)

val table1_md : ideal_ipc:float -> Experiment.run list -> string
(** Table 1 as the exact markdown block of EXPERIMENTS.md: paper-constant
    rows plus the measured rows, column layout pinned byte-for-byte. *)

val table2_md : Experiment.run list -> string

type gap_row = {
  gap_label : string;        (** geometry, e.g. ["2x8"] *)
  gap_loops : int;           (** exact-slice size *)
  gap_optimal : int;         (** solved to proven optimality *)
  gap_bound : int;
  gap_exhausted : int;
  gap_greedy_optimal : int;  (** greedy matched a proven optimum *)
  gap_mean_greedy_ii : float;    (** means over the proven-optimal loops *)
  gap_mean_exact_ii : float;
  gap_mean_greedy_copies : float;
  gap_mean_exact_copies : float;
}
(** One Table-3 row. A plain record (not [Exact.Gap.row]) so this
    library needs no dependency on the solver — the CLI converts. *)

val table3_heading : string

val table3_md : gap_row list -> string
(** "Greedy heuristic vs. provably optimal bank assignment": per
    geometry the status counts, the share of loops where greedy is
    provably optimal, and like-for-like II / copy means over the loops
    solved to optimality. Empty-population cells render as ["-"]. *)

val table3 : gap_row list -> Util.Table.t
(** The same data for terminal reading ([rbp report -f text]). *)

val paper_tables_md : ?gap:gap_row list -> ideal_ipc:float -> Experiment.run list -> string
(** Both tables with their EXPERIMENTS.md [##] headings — what
    [rbp report -f md] prints. [gap] (when non-empty) appends Table 3. *)

val paper_tables_json :
  seed:int -> loops:int -> ideal_ipc:float -> Experiment.run list -> Obs.Json.t
(** The same aggregates in the [rbp-bench/1] telemetry schema (without
    the host-dependent ["stages"] timings), so a report can be fed
    straight to {!Perfdiff}. *)

val check_tables_in :
  ?gap:gap_row list ->
  ideal_ipc:float ->
  Experiment.run list ->
  string ->
  (unit, string) result
(** [check_tables_in ~ideal_ipc runs text] verifies every regenerated
    table block (heading, blank line, table, trailing blank) appears
    verbatim in [text] — the [rbp report --check EXPERIMENTS.md]
    freshness gate. [gap] (when non-empty) extends the gate to Table 3.
    [Error] names the missing tables. *)

val failures_summary : Experiment.run list -> string
(** Human-readable list of loops that failed to pipeline (expected to be
    empty). *)

val to_csv : Experiment.run list -> string
(** Per-loop results of every run as CSV (header line included): columns
    config, loop, ops, ideal_ii, clustered_ii, degradation, ipc_ideal,
    ipc_clustered, copies. For plotting outside the repo. *)
