(** Rendering of the paper's tables and figures from experiment runs. *)

val table1 : ideal_ipc:float -> Experiment.run list -> Util.Table.t
(** "IPC of Clustered Software Pipelines": one column per configuration,
    an Ideal row and a Clustered row. *)

val table2 : Experiment.run list -> Util.Table.t
(** "Degradation Over Ideal Schedules — Normalized": arithmetic and
    harmonic mean rows. *)

val figure_histogram : Experiment.run -> Experiment.run -> title:string -> Util.Table.t
(** One of Figures 5-7: per-bucket percentage of loops for the embedded
    and copy-unit runs of one cluster count. *)

val ascii_histogram : Experiment.run -> Experiment.run -> title:string -> string
(** The same data as a bar chart for terminal reading. *)

val table1_md : ideal_ipc:float -> Experiment.run list -> string
(** Table 1 as the exact markdown block of EXPERIMENTS.md: paper-constant
    rows plus the measured rows, column layout pinned byte-for-byte. *)

val table2_md : Experiment.run list -> string

val paper_tables_md : ideal_ipc:float -> Experiment.run list -> string
(** Both tables with their EXPERIMENTS.md [##] headings — what
    [rbp report -f md] prints. *)

val paper_tables_json :
  seed:int -> loops:int -> ideal_ipc:float -> Experiment.run list -> Obs.Json.t
(** The same aggregates in the [rbp-bench/1] telemetry schema (without
    the host-dependent ["stages"] timings), so a report can be fed
    straight to {!Perfdiff}. *)

val check_tables_in :
  ideal_ipc:float -> Experiment.run list -> string -> (unit, string) result
(** [check_tables_in ~ideal_ipc runs text] verifies both regenerated
    table blocks (heading, blank line, table, trailing blank) appear
    verbatim in [text] — the [rbp report --check EXPERIMENTS.md]
    freshness gate. [Error] names the missing tables. *)

val failures_summary : Experiment.run list -> string
(** Human-readable list of loops that failed to pipeline (expected to be
    empty). *)

val to_csv : Experiment.run list -> string
(** Per-loop results of every run as CSV (header line included): columns
    config, loop, ops, ideal_ii, clustered_ii, degradation, ipc_ideal,
    ipc_clustered, copies. For plotting outside the repo. *)
