(** Suite compilation as engine job batches.

    This is the glue between the generic {!Engine} (pools, cache,
    deterministic merge) and the pipeline: it fingerprints a
    (loop, machine, options) triple into a content-addressed cache key,
    serializes per-loop outcomes — {!Metrics.loop_metrics} on success,
    the structured {!Verify.Stage_error} on failure — and runs a loop
    list through {!Partition.Driver.pipeline} on [jobs] domains.

    Fingerprints are {e content}: the full loop body (op ids, opcodes,
    classes, operands, addresses, immediates, depth, trip count,
    live-outs), the complete machine description including the latency
    table tabulated over every (opcode, class), and the pipeline
    options. A [Custom] partitioner carries an opaque closure, so such
    jobs get no key and are always recomputed — the cache can never be
    wrong, only cold. *)

type outcome = (Metrics.loop_metrics, Verify.Stage_error.t) Stdlib.result

val fingerprint_loop : Ir.Loop.t -> string
val fingerprint_machine : Mach.Machine.t -> string

val fingerprint_options :
  ?partitioner:Partition.Driver.partitioner ->
  ?scheduler:Partition.Driver.scheduler ->
  unit ->
  string option
(** [None] for a [Custom] partitioner (unfingerprintable closure). *)

val job_key :
  ?partitioner:Partition.Driver.partitioner ->
  ?scheduler:Partition.Driver.scheduler ->
  machine:Mach.Machine.t ->
  Ir.Loop.t ->
  string option

val codec : outcome Engine.Run.codec
(** Lossless: numbers survive the JSON round-trip bit-exactly (shortest
    round-tripping representation), so warm results are byte-identical
    to cold ones in every report. *)

type result = {
  outcomes : (string * outcome) array;  (** (loop name, outcome), suite order *)
  hits : int;      (** outcomes served from the cache *)
  executed : int;  (** outcomes computed this run *)
}

val run :
  ?obs:Obs.Trace.t ->
  ?jobs:int ->
  ?cache:Engine.Cache.t ->
  ?job_clock:(int -> Obs.Clock.t) ->
  ?partitioner:Partition.Driver.partitioner ->
  ?scheduler:Partition.Driver.scheduler ->
  machine:Mach.Machine.t ->
  Ir.Loop.t list ->
  result
(** [jobs] defaults to 1 — the exact serial path; [0] means one per
    core. A loop whose job {e raises} (the pipeline's contract is that
    none does) is folded into the [Error] side as a [PIPE001]
    verification-stage error naming the exception, so one bad loop can
    never take down the batch. *)
