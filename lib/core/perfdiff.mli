(** Comparison of two bench telemetry documents ([rbp-bench/1], written
    by [bench/main.exe]) with per-metric regression thresholds — the
    engine behind [rbp perfdiff] and the CI perf gate.

    Only the deterministic metrics are compared (per-config loop counts,
    failures, IPC, degradation means); the ["stages"] wall times vary by
    host and are deliberately ignored, so a checked-in baseline gates CI
    byte-reproducibly.

    Exit-code contract (enforced by the CLI, encoded here as types):
    0 — no regression; 1 — at least one regression; 2 — a document
    failed to parse, declared a different schema, or the two runs are
    incomparable (different seed, loop count or config set). *)

type config_metrics = {
  label : string;
  clusters : int;
  copy_model : string;
  loops_ok : int;
  failures : int;
  mean_ipc_clustered : float;
  arith_mean_degradation : float;
  harmonic_mean_degradation : float;
  pct_no_degradation : float;
}

type serve_latency = {
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;  (** informational only, never gated *)
  degraded_p99_ms : float option;
      (** tail of the degraded (error/timeout/shed-retry) series *)
}

type exact_geometry = {
  geo_label : string;     (** ["2x8"] etc. *)
  geo_loops : int;        (** slice size for this geometry *)
  optimal : int;          (** loops solved to proven optimality *)
  bound : int;
  exhausted : int;
  greedy_optimal_pct : float;
  mean_exact_ii : float;  (** over the proven-optimal loops *)
  mean_greedy_ii : float;
}

type exact_metrics = {
  budget : int;       (** solver node budget the run used *)
  max_vregs : int;    (** slice criterion *)
  geometries : exact_geometry list;
}

type doc = {
  seed : int;
  loops : int;
  ideal_ipc : float;
  configs : config_metrics list;
  jobs : int option;  (** engine [-j] level, absent in pre-engine documents *)
  cache_hits : int option;  (** result-cache hits across the run *)
  wall_s : float option;  (** whole-run wall time; host-dependent, never gated *)
  serve : serve_latency option;
      (** service latency quantiles from [rbp bombard --json]; gated only
          when both compared documents carry them *)
  exact : exact_metrics option;
      (** heuristic-vs-optimal gap metrics from [rbp exact --json]; gated
          only when both documents carry them, and only at identical
          budget and slice criterion (otherwise incomparable, exit 2).
          The gates are strict — the solver is deterministic, so a lost
          optimum, new budget exhaustion or any movement of a proven
          mean II is a real change *)
}

val parse : string -> (doc, string) result
(** Rejects anything whose [schema] is not ["rbp-bench/1"]. *)

type thresholds = {
  ipc_rel_drop : float;
      (** max tolerated relative drop in an IPC metric (e.g. [0.02]) *)
  degradation_rise : float;
      (** max tolerated absolute rise in a degradation mean, in points *)
  pct_drop : float;
      (** max tolerated absolute drop of [pct_no_degradation], in points *)
  latency_rel_rise : (float * float) list;
      (** per-quantile max tolerated relative latency rise, as
          [(quantile, rise)] — e.g. [(0.99, 4.0)] allows p99 up to 5x
          the baseline; a quantile not listed is never gated *)
  latency_floor_ms : float;
      (** absolute slack below which a latency rise is never a
          regression, so microsecond-scale baselines don't flake *)
}

val default_thresholds : thresholds
(** 2% relative IPC, 2.0 degradation points, 3.0 percentage points —
    loose enough for float jitter across compilers, tight enough to
    catch a real heuristic regression. Any new failure or lost loop is
    always a regression regardless of thresholds. Latency quantiles are
    host-dependent, so their guards are looser still — p50 3x, p95 4x,
    p99 5x with a 5 ms floor — catching blowups, not jitter. *)

type finding = {
  config : string;      (** config label, or ["suite"] for global metrics *)
  metric : string;
  old_value : float;
  new_value : float;
  regressed : bool;
}

val diff :
  ?thresholds:thresholds -> baseline:doc -> current:doc -> unit -> (finding list, string) result
(** All compared metrics in document order; [Error] when the runs are
    incomparable (the exit-2 case). *)

val regressions : finding list -> finding list

val engine_note : baseline:doc -> current:doc -> string option
(** One informational line about the engine telemetry (jobs level, wall
    speedup ratio, cache hits) when either document carries it — never a
    regression, never part of the exit code. [None] for two pre-engine
    documents. *)

val render : finding list -> string
(** One line per metric: [ok]/[REGRESSED], values and delta. *)
