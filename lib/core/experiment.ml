type config = {
  label : string;
  clusters : int;
  copy_model : Mach.Machine.copy_model;
  machine : Mach.Machine.t;
}

let config_for ~clusters ~copy_model =
  {
    label =
      Printf.sprintf "%dx%d %s" clusters (16 / clusters)
        (Mach.Machine.copy_model_name copy_model);
    clusters;
    copy_model;
    machine = Mach.Machine.paper_clustered ~clusters ~copy_model;
  }

let paper_configs =
  List.concat_map
    (fun clusters ->
      [
        config_for ~clusters ~copy_model:Mach.Machine.Embedded;
        config_for ~clusters ~copy_model:Mach.Machine.Copy_unit;
      ])
    [ 2; 4; 8 ]

let default_loops = lazy (Workload.Suite.loops ())

type run = {
  config : config;
  metrics : Metrics.loop_metrics list;
  failures : (string * Verify.Stage_error.t) list;
  cache_hits : int;
}

let run_config ?obs ?(jobs = 1) ?cache ?job_clock ?partitioner ?loops config =
  let loops = match loops with Some l -> l | None -> Lazy.force default_loops in
  Obs.Trace.span obs "experiment.config"
    ~attrs:[ ("config", config.label); ("loops", string_of_int (List.length loops)) ]
  @@ fun () ->
  let batch =
    Batch.run ?obs ~jobs ?cache ?job_clock ?partitioner ~machine:config.machine loops
  in
  let metrics = ref [] in
  let failures = ref [] in
  Array.iter
    (fun (name, outcome) ->
      match outcome with
      | Ok m -> metrics := m :: !metrics
      | Error e -> failures := (name, e) :: !failures)
    batch.Batch.outcomes;
  {
    config;
    metrics = List.rev !metrics;
    failures = List.rev !failures;
    cache_hits = batch.Batch.hits;
  }

let run_all ?obs ?jobs ?cache ?job_clock ?partitioner ?loops ?(configs = paper_configs) () =
  List.map (run_config ?obs ?jobs ?cache ?job_clock ?partitioner ?loops) configs

let ideal_ipc ?loops () =
  let loops = match loops with Some l -> l | None -> Lazy.force default_loops in
  let machine = Mach.Machine.paper_ideal in
  let ipcs =
    List.filter_map
      (fun loop ->
        let ddg = Ddg.Graph.of_loop ~latency:machine.Mach.Machine.latency loop in
        match Sched.Modulo.ideal ~machine ddg with
        | Some o ->
            Some (float_of_int (Ir.Loop.size loop) /. float_of_int o.Sched.Modulo.ii)
        | None -> None)
      loops
  in
  Util.Stats.mean ipcs
