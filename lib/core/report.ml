let table1 ~ideal_ipc runs =
  let t =
    Util.Table.create ~title:"Table 1. IPC of Clustered Software Pipelines"
      ~header:("Model" :: List.map (fun (r : Experiment.run) -> r.config.label) runs)
  in
  Util.Table.add_row t
    ("Ideal" :: List.map (fun _ -> Util.Table.cell_float ideal_ipc) runs);
  Util.Table.add_row t
    ("Clustered"
    :: List.map
         (fun (r : Experiment.run) ->
           Util.Table.cell_float (Metrics.mean_ipc_clustered r.metrics))
         runs);
  t

let table2 runs =
  let t =
    Util.Table.create ~title:"Table 2. Degradation Over Ideal Schedules - Normalized"
      ~header:("Average" :: List.map (fun (r : Experiment.run) -> r.config.label) runs)
  in
  Util.Table.add_row t
    ("Arithmetic Mean"
    :: List.map
         (fun (r : Experiment.run) ->
           Util.Table.cell_float ~decimals:0 (Metrics.arithmetic_mean_degradation r.metrics))
         runs);
  Util.Table.add_row t
    ("Harmonic Mean"
    :: List.map
         (fun (r : Experiment.run) ->
           Util.Table.cell_float ~decimals:0 (Metrics.harmonic_mean_degradation r.metrics))
         runs);
  t

let histogram_percents (run : Experiment.run) =
  Util.Stats.histogram_percent (Metrics.degradation_histogram run.metrics)

let figure_histogram embedded copy_unit ~title =
  let t = Util.Table.create ~title ~header:("Degradation" :: Metrics.histogram_labels) in
  let row label (run : Experiment.run) =
    Util.Table.add_row t
      (label
      :: (Array.to_list (histogram_percents run) |> List.map (Util.Table.cell_float ~decimals:1)))
  in
  row "Embedded" embedded;
  row "Copy Unit" copy_unit;
  t

let ascii_histogram embedded copy_unit ~title =
  let buf = Buffer.create 512 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let pe = histogram_percents embedded and pc = histogram_percents copy_unit in
  List.iteri
    (fun idx label ->
      let bar p = String.make (int_of_float (p /. 2.0)) '#' in
      Buffer.add_string buf
        (Printf.sprintf "  %-6s E %5.1f%% |%-40s\n         C %5.1f%% |%-40s\n" label pe.(idx)
           (bar pe.(idx)) pc.(idx) (bar pc.(idx))))
    Metrics.histogram_labels;
  Buffer.contents buf

let to_csv runs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "config,loop,ops,ideal_ii,clustered_ii,degradation,ipc_ideal,ipc_clustered,copies\n";
  List.iter
    (fun (r : Experiment.run) ->
      List.iter
        (fun (m : Metrics.loop_metrics) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%d,%d,%d,%.2f,%.3f,%.3f,%d\n" r.config.label
               m.Metrics.name m.Metrics.n_ops m.Metrics.ideal_ii m.Metrics.clustered_ii
               m.Metrics.degradation m.Metrics.ipc_ideal m.Metrics.ipc_clustered
               m.Metrics.n_copies))
        r.metrics)
    runs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Markdown paper tables (EXPERIMENTS.md Tables 1-2, byte-identical)    *)

(* The paper rows are constants from Hiser/Carr/Sweany/Beaty Tables 1-2;
   the "ours" rows come from the runs. Column layout (including the
   hand-aligned header padding) is pinned to EXPERIMENTS.md so that
   `rbp report -f md` regenerates those sections byte-for-byte. *)
let paper_ideal_ipc = 8.6
let paper_clustered_ipc = [ 9.3; 6.2; 8.4; 7.5; 6.9; 6.8 ]
let paper_arith = [ 111.; 150.; 126.; 122.; 162.; 133. ]
let paper_harm = [ 109.; 127.; 119.; 115.; 138.; 124. ]

let table1_heading = "## Table 1 — IPC of clustered software pipelines"

let table2_heading =
  "## Table 2 — degradation over ideal schedules, normalized (100 = ideal)"

let md_row ~label_width label cell values =
  Printf.sprintf "| %-*s | %s |" label_width label
    (String.concat " | " (List.map cell values))

let table1_md ~ideal_ipc runs =
  let cell = Printf.sprintf "%.1f" in
  let row = md_row ~label_width:17 in
  String.concat "\n"
    [
      "| Model     | 2×8 E | 2×8 C | 4×4 E | 4×4 C | 8×2 E | 8×2 C |";
      "|-----------|-------|-------|-------|-------|-------|-------|";
      row "Ideal (paper)" cell (List.map (fun _ -> paper_ideal_ipc) runs);
      row "Ideal (ours)" cell (List.map (fun _ -> ideal_ipc) runs);
      row "Clustered (paper)" cell paper_clustered_ipc;
      row "Clustered (ours)" cell
        (List.map (fun (r : Experiment.run) -> Metrics.mean_ipc_clustered r.metrics) runs);
    ]

let table2_md runs =
  let cell = Printf.sprintf "%.0f" in
  let row = md_row ~label_width:13 in
  let arith =
    List.map (fun (r : Experiment.run) -> Metrics.arithmetic_mean_degradation r.metrics) runs
  in
  let harm =
    List.map (fun (r : Experiment.run) -> Metrics.harmonic_mean_degradation r.metrics) runs
  in
  String.concat "\n"
    [
      "| Mean | 2×8 E | 2×8 C | 4×4 E | 4×4 C | 8×2 E | 8×2 C |";
      "|------|-------|-------|-------|-------|-------|-------|";
      row "Arith (paper)" cell paper_arith;
      row "Arith (ours)" cell arith;
      row "Harm (paper)" cell paper_harm;
      row "Harm (ours)" cell harm;
    ]

type gap_row = {
  gap_label : string;
  gap_loops : int;
  gap_optimal : int;
  gap_bound : int;
  gap_exhausted : int;
  gap_greedy_optimal : int;
  gap_mean_greedy_ii : float;
  gap_mean_exact_ii : float;
  gap_mean_greedy_copies : float;
  gap_mean_exact_copies : float;
}

let table3_heading =
  "## Table 3 — greedy heuristic vs. provably optimal bank assignment (exact slice)"

let table3_md rows =
  let line (r : gap_row) =
    (* "-" where a mean has no population: nothing proven optimal means
       there is no like-for-like set to average over. *)
    let f2 v = if r.gap_optimal = 0 then "-" else Printf.sprintf "%.2f" v in
    let pct =
      if r.gap_loops = 0 then "-"
      else
        Printf.sprintf "%.1f"
          (100.0 *. float_of_int r.gap_greedy_optimal /. float_of_int r.gap_loops)
    in
    Printf.sprintf "| %-8s | %5d | %7d | %5d | %9d | %12s | %9s | %8s | %13s | %12s |"
      r.gap_label r.gap_loops r.gap_optimal r.gap_bound r.gap_exhausted pct
      (f2 r.gap_mean_greedy_ii) (f2 r.gap_mean_exact_ii)
      (f2 r.gap_mean_greedy_copies) (f2 r.gap_mean_exact_copies)
  in
  String.concat "\n"
    ([
       "| Geometry | Loops | Optimal | Bound | Exhausted | Greedy-opt % | Greedy II | Exact II | Greedy copies | Exact copies |";
       "|----------|-------|---------|-------|-----------|--------------|-----------|----------|---------------|--------------|";
     ]
    @ List.map line rows)

let table3 rows =
  let t =
    Util.Table.create ~title:"Table 3: greedy vs. provably optimal (exact slice)"
      ~header:
        [
          "geometry"; "loops"; "optimal"; "bound"; "exhausted"; "greedy-opt %";
          "greedy II"; "exact II"; "greedy copies"; "exact copies";
        ]
  in
  List.iter
    (fun (r : gap_row) ->
      let f2 v = if r.gap_optimal = 0 then "-" else Printf.sprintf "%.2f" v in
      let pct =
        if r.gap_loops = 0 then "-"
        else
          Printf.sprintf "%.1f"
            (100.0 *. float_of_int r.gap_greedy_optimal /. float_of_int r.gap_loops)
      in
      Util.Table.add_row t
        [
          r.gap_label; string_of_int r.gap_loops; string_of_int r.gap_optimal;
          string_of_int r.gap_bound; string_of_int r.gap_exhausted; pct;
          f2 r.gap_mean_greedy_ii; f2 r.gap_mean_exact_ii;
          f2 r.gap_mean_greedy_copies; f2 r.gap_mean_exact_copies;
        ])
    rows;
  t

let paper_tables_md ?gap ~ideal_ipc runs =
  String.concat "\n"
    ([
       table1_heading; ""; table1_md ~ideal_ipc runs; "";
       table2_heading; ""; table2_md runs; "";
     ]
    @ match gap with
      | None | Some [] -> []
      | Some rows -> [ table3_heading; ""; table3_md rows; "" ])

let paper_tables_json ~seed ~loops ~ideal_ipc runs =
  let num x = Obs.Json.Num x in
  let int_num x = Obs.Json.Num (float_of_int x) in
  let config_json (r : Experiment.run) =
    Obs.Json.Obj
      [
        ("label", Obs.Json.Str r.config.label);
        ("clusters", int_num r.config.clusters);
        ("copy_model", Obs.Json.Str (Mach.Machine.copy_model_name r.config.copy_model));
        ("loops_ok", int_num (List.length r.metrics));
        ("failures", int_num (List.length r.failures));
        ("mean_ipc_clustered", num (Metrics.mean_ipc_clustered r.metrics));
        ("arith_mean_degradation", num (Metrics.arithmetic_mean_degradation r.metrics));
        ("harmonic_mean_degradation", num (Metrics.harmonic_mean_degradation r.metrics));
        ("pct_no_degradation", num (Metrics.pct_no_degradation r.metrics));
      ]
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "rbp-bench/1");
      ("seed", int_num seed);
      ("loops", int_num loops);
      ("ideal_ipc", num ideal_ipc);
      ("configs", Obs.Json.List (List.map config_json runs));
    ]

let contains_block ~block text =
  (* Naive substring search is fine: blocks are a few hundred bytes and
     the document a few KB. *)
  let bl = String.length block and tl = String.length text in
  let rec go i = i + bl <= tl && (String.sub text i bl = block || go (i + 1)) in
  bl = 0 || go 0

let check_tables_in ?gap ~ideal_ipc runs text =
  let block1 =
    String.concat "\n" [ table1_heading; ""; table1_md ~ideal_ipc runs; "" ]
  in
  let block2 = String.concat "\n" [ table2_heading; ""; table2_md runs; "" ] in
  let missing = ref [] in
  if not (contains_block ~block:block1 text) then missing := "Table 1" :: !missing;
  if not (contains_block ~block:block2 text) then missing := "Table 2" :: !missing;
  (match gap with
  | None | Some [] -> ()
  | Some rows ->
      let block3 = String.concat "\n" [ table3_heading; ""; table3_md rows; "" ] in
      if not (contains_block ~block:block3 text) then missing := "Table 3" :: !missing);
  match List.rev !missing with
  | [] -> Ok ()
  | m -> Error (String.concat ", " m)

let failures_summary runs =
  let buf = Buffer.create 128 in
  List.iter
    (fun (r : Experiment.run) ->
      List.iter
        (fun (name, err) ->
          Buffer.add_string buf
            (Printf.sprintf "  [%s] %s: %s\n" r.config.label name
               (Verify.Stage_error.to_string err)))
        r.failures)
    runs;
  if Buffer.length buf = 0 then "  (none)\n" else Buffer.contents buf
