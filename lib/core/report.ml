let table1 ~ideal_ipc runs =
  let t =
    Util.Table.create ~title:"Table 1. IPC of Clustered Software Pipelines"
      ~header:("Model" :: List.map (fun (r : Experiment.run) -> r.config.label) runs)
  in
  Util.Table.add_row t
    ("Ideal" :: List.map (fun _ -> Util.Table.cell_float ideal_ipc) runs);
  Util.Table.add_row t
    ("Clustered"
    :: List.map
         (fun (r : Experiment.run) ->
           Util.Table.cell_float (Metrics.mean_ipc_clustered r.metrics))
         runs);
  t

let table2 runs =
  let t =
    Util.Table.create ~title:"Table 2. Degradation Over Ideal Schedules - Normalized"
      ~header:("Average" :: List.map (fun (r : Experiment.run) -> r.config.label) runs)
  in
  Util.Table.add_row t
    ("Arithmetic Mean"
    :: List.map
         (fun (r : Experiment.run) ->
           Util.Table.cell_float ~decimals:0 (Metrics.arithmetic_mean_degradation r.metrics))
         runs);
  Util.Table.add_row t
    ("Harmonic Mean"
    :: List.map
         (fun (r : Experiment.run) ->
           Util.Table.cell_float ~decimals:0 (Metrics.harmonic_mean_degradation r.metrics))
         runs);
  t

let histogram_percents (run : Experiment.run) =
  Util.Stats.histogram_percent (Metrics.degradation_histogram run.metrics)

let figure_histogram embedded copy_unit ~title =
  let t = Util.Table.create ~title ~header:("Degradation" :: Metrics.histogram_labels) in
  let row label (run : Experiment.run) =
    Util.Table.add_row t
      (label
      :: (Array.to_list (histogram_percents run) |> List.map (Util.Table.cell_float ~decimals:1)))
  in
  row "Embedded" embedded;
  row "Copy Unit" copy_unit;
  t

let ascii_histogram embedded copy_unit ~title =
  let buf = Buffer.create 512 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let pe = histogram_percents embedded and pc = histogram_percents copy_unit in
  List.iteri
    (fun idx label ->
      let bar p = String.make (int_of_float (p /. 2.0)) '#' in
      Buffer.add_string buf
        (Printf.sprintf "  %-6s E %5.1f%% |%-40s\n         C %5.1f%% |%-40s\n" label pe.(idx)
           (bar pe.(idx)) pc.(idx) (bar pc.(idx))))
    Metrics.histogram_labels;
  Buffer.contents buf

let to_csv runs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "config,loop,ops,ideal_ii,clustered_ii,degradation,ipc_ideal,ipc_clustered,copies\n";
  List.iter
    (fun (r : Experiment.run) ->
      List.iter
        (fun (m : Metrics.loop_metrics) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%d,%d,%d,%.2f,%.3f,%.3f,%d\n" r.config.label
               m.Metrics.name m.Metrics.n_ops m.Metrics.ideal_ii m.Metrics.clustered_ii
               m.Metrics.degradation m.Metrics.ipc_ideal m.Metrics.ipc_clustered
               m.Metrics.n_copies))
        r.metrics)
    runs;
  Buffer.contents buf

let failures_summary runs =
  let buf = Buffer.create 128 in
  List.iter
    (fun (r : Experiment.run) ->
      List.iter
        (fun (name, err) ->
          Buffer.add_string buf
            (Printf.sprintf "  [%s] %s: %s\n" r.config.label name
               (Verify.Stage_error.to_string err)))
        r.failures)
    runs;
  if Buffer.length buf = 0 then "  (none)\n" else Buffer.contents buf
