type t = {
  machine : Mach.Machine.t;
  result : Partition.Driver.result;
  events : Obs.Events.t list;
}

let run ?partitioner ?scheduler ~machine loop =
  (* Fake clock: explain output is a pure function of (loop, machine),
     never of wall time, so narratives diff cleanly across runs. *)
  let obs = Obs.Trace.make ~clock:(Obs.Clock.fake ()) () in
  match Partition.Driver.pipeline ~obs ?partitioner ?scheduler ~machine loop with
  | Error e -> Error (Verify.Stage_error.to_string e)
  | Ok result -> Ok { machine; result; events = Obs.Trace.events obs }

(* The event stream is chronological: ideal scheduling, then RCG build,
   greedy placement, copy insertion, clustered scheduling. Scheduler
   events therefore belong to the ideal pipeline iff they precede the
   first RCG/greedy event. *)
let split_sections events =
  let rcg = ref [] and greedy = ref [] and copies = ref [] in
  let sched_ideal = ref [] and sched_clustered = ref [] and alloc = ref [] in
  let seen_rcg = ref false in
  List.iter
    (fun (e : Obs.Events.t) ->
      match e with
      | Obs.Events.Rcg_factor _ | Obs.Events.Rcg_edge _ ->
          seen_rcg := true;
          rcg := e :: !rcg
      | Obs.Events.Greedy_penalty _ | Obs.Events.Greedy_place _ ->
          seen_rcg := true;
          greedy := e :: !greedy
      | Obs.Events.Copy_route _ -> copies := e :: !copies
      | Obs.Events.Ii_escalate _ | Obs.Events.Sched_evict _ ->
          if !seen_rcg then sched_clustered := e :: !sched_clustered
          else sched_ideal := e :: !sched_ideal
      | Obs.Events.Spill _ | Obs.Events.Alloc_pressure _ -> alloc := e :: !alloc)
    events;
  ( List.rev !rcg, List.rev !greedy, List.rev !copies,
    List.rev !sched_ideal, List.rev !sched_clustered, List.rev !alloc )

let narrative t =
  let b = Buffer.create 2048 in
  let r = t.result in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let section title events ~empty =
    line "";
    line "-- %s --" title;
    if events = [] then line "%s" empty
    else List.iter (fun e -> line "%s" (Obs.Events.to_string e)) events
  in
  line "=== %s on %s ===" (Ir.Loop.name r.Partition.Driver.loop)
    t.machine.Mach.Machine.name;
  line "ideal II %d, clustered II %d, degradation %.0f (100 = ideal), %d copies"
    r.Partition.Driver.ideal.Sched.Modulo.ii r.Partition.Driver.clustered.Sched.Modulo.ii
    r.Partition.Driver.degradation r.Partition.Driver.n_copies;
  let rcg, greedy, copies, sched_ideal, sched_clustered, alloc = split_sections t.events in
  section "ideal modulo scheduling" sched_ideal ~empty:"scheduled at MII, first try";
  section "RCG construction" rcg ~empty:"(no contributions)";
  section "greedy placement" greedy ~empty:"(no placements)";
  section "cross-bank copies" copies ~empty:"(none needed)";
  section "clustered modulo scheduling" sched_clustered ~empty:"scheduled at MII, first try";
  if alloc <> [] then section "register allocation" alloc ~empty:"";
  (* The AN008 set, from the same analysis call the exact solver counts —
     narrative and solver cite one remat set, not two approximations. *)
  let remat =
    Analysis.Valrange.remat_candidates r.Partition.Driver.loop
      (Analysis.Valrange.of_loop r.Partition.Driver.loop)
  in
  line "";
  line "-- rematerializable values (AN008) --";
  if remat = [] then line "(none: every cross-bank value must travel by copy)"
  else begin
    line "%d op(s) could be recomputed in the consuming bank instead of copied:"
      (List.length remat);
    List.iter (fun op -> line "  %s" (Ir.Op.to_string op)) remat
  end;
  Buffer.contents b

let dot t =
  match
    Rcg.Build.of_loop_res ~machine:t.machine t.result.Partition.Driver.loop
  with
  | Error e -> invalid_arg ("Explain.dot: " ^ e)
  | Ok g ->
      Rcg.Graph.to_dot
        ~assignment:(fun r -> Partition.Assign.bank_opt t.result.Partition.Driver.assignment r)
        g

let reservation_table t =
  let kernel = t.result.Partition.Driver.clustered.Sched.Modulo.kernel in
  let ii = Sched.Kernel.ii kernel in
  let clusters = t.machine.Mach.Machine.clusters in
  let cells = Array.make_matrix ii clusters [] in
  List.iter
    (fun (p : Sched.Schedule.placement) ->
      let slot = p.Sched.Schedule.cycle mod ii in
      cells.(slot).(p.Sched.Schedule.cluster) <-
        (p.Sched.Schedule.cycle, p.Sched.Schedule.op) :: cells.(slot).(p.Sched.Schedule.cluster))
    (Sched.Kernel.placements kernel);
  let cell slot c =
    List.sort compare cells.(slot).(c)
    |> List.map (fun (_, op) ->
           Printf.sprintf "#%d:%s" (Ir.Op.id op) (Mach.Opcode.to_string (Ir.Op.opcode op)))
    |> String.concat " "
  in
  let width =
    let w = ref 9 in
    for slot = 0 to ii - 1 do
      for c = 0 to clusters - 1 do
        w := max !w (String.length (cell slot c))
      done
    done;
    !w
  in
  let b = Buffer.create 512 in
  (* right-trim each row: the padded last column would otherwise leave
     trailing blanks, which diff tools and cram tests choke on *)
  let line s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do decr n done;
    Buffer.add_string b (String.sub s 0 !n);
    Buffer.add_char b '\n'
  in
  line (Printf.sprintf "modulo reservation table (II=%d, %d stages)" ii
          (Sched.Kernel.n_stages kernel));
  let row prefix f =
    let r = Buffer.create 80 in
    Buffer.add_string r prefix;
    for c = 0 to clusters - 1 do
      Buffer.add_string r (f c)
    done;
    line (Buffer.contents r)
  in
  row "slot" (fun c -> Printf.sprintf " | %-*s" width (Printf.sprintf "cluster %d" c));
  row "----" (fun _ -> Printf.sprintf "-+-%s" (String.make width '-'));
  for slot = 0 to ii - 1 do
    row (Printf.sprintf "%4d" slot) (fun c -> Printf.sprintf " | %-*s" width (cell slot c))
  done;
  Buffer.contents b
