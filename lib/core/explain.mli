(** Decision-provenance narratives: run the pipeline under a trace and
    render the evidence ({!Obs.Events}) as a placement story.

    Three views of one traced run:

    - {!narrative}: why each register landed in its bank — RCG factor and
      edge contributions, the greedy balance penalty and per-node benefit
      vectors (with tie-breaks), every cross-bank copy's route, the
      scheduler's II escalations and eviction chains, and the
      rematerializable-value set ({!Analysis.Valrange.remat_candidates},
      the AN008 family) that bounds how many copies could be avoided by
      recomputation — the same set the exact solver reports;
    - {!dot}: the RCG as Graphviz DOT with nodes colored by final bank;
    - {!reservation_table}: the clustered kernel as an ASCII modulo
      reservation table (slot × cluster).

    The run always uses a fake fixed-step clock, so every view is a pure
    function of the loop and machine — byte-stable across hosts. *)

type t = {
  machine : Mach.Machine.t;
  result : Partition.Driver.result;
  events : Obs.Events.t list;  (** chronological *)
}

val run :
  ?partitioner:Partition.Driver.partitioner ->
  ?scheduler:Partition.Driver.scheduler ->
  machine:Mach.Machine.t ->
  Ir.Loop.t ->
  (t, string) result
(** Pipelines the loop under a fresh deterministic trace. [Error] carries
    the stage error rendered as text. *)

val narrative : t -> string

val dot : t -> string
(** Rebuilds the RCG (deterministic, same inputs as the traced run) and
    renders it with the final bank assignment as node colors. *)

val reservation_table : t -> string
(** One row per kernel slot (cycle mod II), one column per cluster; each
    cell lists the ops issuing there as [#id:opcode], stage order. *)
