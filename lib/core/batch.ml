type outcome = (Metrics.loop_metrics, Verify.Stage_error.t) Stdlib.result

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)

let fingerprint_loop loop =
  let b = Buffer.create 256 in
  Buffer.add_string b (Ir.Loop.name loop);
  Buffer.add_char b '\n';
  Buffer.add_string b (string_of_int (Ir.Loop.depth loop));
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int (Ir.Loop.trip_count loop));
  Buffer.add_char b '\n';
  Ir.Vreg.Set.iter
    (fun r ->
      Buffer.add_string b (Ir.Vreg.to_string r);
      Buffer.add_char b ',')
    (Ir.Loop.live_out loop);
  Buffer.add_char b '\n';
  List.iter
    (fun op ->
      Buffer.add_string b (string_of_int (Ir.Op.id op));
      Buffer.add_char b '#';
      Buffer.add_string b (Ir.Op.to_string op);
      Buffer.add_char b '\n')
    (Ir.Loop.ops loop);
  Buffer.contents b

let fingerprint_machine (m : Mach.Machine.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s|%d|%d|%s|%d|%d|%d\n" m.Mach.Machine.name m.Mach.Machine.clusters
       m.Mach.Machine.fus_per_cluster
       (Mach.Machine.copy_model_name m.Mach.Machine.copy_model)
       m.Mach.Machine.copy_ports m.Mach.Machine.busses m.Mach.Machine.regs_per_bank);
  List.iter
    (fun (cls, count) ->
      Buffer.add_string b (Mach.Machine.fu_class_name cls);
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int count);
      Buffer.add_char b ',')
    m.Mach.Machine.fu_mix;
  Buffer.add_char b '\n';
  (* The latency table is a function; tabulate it over the whole opcode
     and class space so any override lands in the key. *)
  List.iter
    (fun op ->
      List.iter
        (fun cls ->
          Buffer.add_string b (string_of_int (m.Mach.Machine.latency op cls));
          Buffer.add_char b ',')
        Mach.Rclass.all)
    Mach.Opcode.all;
  Buffer.contents b

let fingerprint_options ?partitioner ?scheduler () =
  let scheduler_name =
    match scheduler with
    | None | Some Partition.Driver.Rau -> "rau"
    | Some Partition.Driver.Swing -> "swing"
  in
  match partitioner with
  | Some (Partition.Driver.Custom _) -> None
  | part ->
      let part_name =
        match part with
        | None -> Printf.sprintf "greedy-default"
        | Some (Partition.Driver.Greedy w) ->
            (* %h prints the exact bits, so two weight sets collide only
               when every float is identical. *)
            Printf.sprintf "greedy(%h,%h,%h,%h,%h)" w.Rcg.Weights.depth_base
              w.Rcg.Weights.critical_boost w.Rcg.Weights.attract_scale
              w.Rcg.Weights.repel_scale w.Rcg.Weights.balance
        | Some Partition.Driver.Bug -> "bug"
        | Some Partition.Driver.Uas -> "uas"
        | Some (Partition.Driver.Custom _) -> assert false
      in
      Some (part_name ^ ";" ^ scheduler_name)

let job_key ?partitioner ?scheduler ~machine loop =
  Option.map
    (fun options ->
      Engine.Key.make
        [
          ("loop", fingerprint_loop loop);
          ("machine", fingerprint_machine machine);
          ("options", options);
        ])
    (fingerprint_options ?partitioner ?scheduler ())

(* ------------------------------------------------------------------ *)
(* Outcome codec                                                       *)

let num x = Obs.Json.Num x
let int_num x = Obs.Json.Num (float_of_int x)

let all_stages =
  Verify.Stage_error.
    [
      Ir_input; Ideal_schedule; Partitioning; Copy_insertion; Clustered_schedule;
      Allocation; Verification;
    ]

let stage_of_name name =
  List.find_opt (fun s -> String.equal (Verify.Stage_error.stage_name s) name) all_stages

let encode_metrics (m : Metrics.loop_metrics) =
  Obs.Json.Obj
    [
      ("name", Obs.Json.Str m.Metrics.name);
      ("ideal_ii", int_num m.Metrics.ideal_ii);
      ("clustered_ii", int_num m.Metrics.clustered_ii);
      ("degradation", num m.Metrics.degradation);
      ("ipc_ideal", num m.Metrics.ipc_ideal);
      ("ipc_clustered", num m.Metrics.ipc_clustered);
      ("n_copies", int_num m.Metrics.n_copies);
      ("n_ops", int_num m.Metrics.n_ops);
    ]

let encode_error (e : Verify.Stage_error.t) =
  let attempt (a : Verify.Stage_error.attempt) =
    Obs.Json.Obj
      [
        ("stage", Obs.Json.Str (Verify.Stage_error.stage_name a.Verify.Stage_error.at_stage));
        ("rung", Obs.Json.Str a.Verify.Stage_error.rung);
        ("code", Obs.Json.Str a.Verify.Stage_error.at_code);
        ("detail", Obs.Json.Str a.Verify.Stage_error.detail);
      ]
  in
  Obs.Json.Obj
    [
      ("stage", Obs.Json.Str (Verify.Stage_error.stage_name e.Verify.Stage_error.stage));
      ("code", Obs.Json.Str e.Verify.Stage_error.code);
      ("message", Obs.Json.Str e.Verify.Stage_error.message);
      ("subject", Obs.Json.Str e.Verify.Stage_error.subject);
      ("attempts", Obs.Json.List (List.map attempt e.Verify.Stage_error.attempts));
    ]

let encode : outcome -> Obs.Json.t = function
  | Ok m -> Obs.Json.Obj [ ("ok", encode_metrics m) ]
  | Error e -> Obs.Json.Obj [ ("err", encode_error e) ]

let ( let* ) = Option.bind

let field name conv j = Option.bind (Obs.Json.member name j) conv

let decode_metrics j : Metrics.loop_metrics option =
  let* name = field "name" Obs.Json.to_str j in
  let* ideal_ii = field "ideal_ii" Obs.Json.to_int j in
  let* clustered_ii = field "clustered_ii" Obs.Json.to_int j in
  let* degradation = field "degradation" Obs.Json.to_num j in
  let* ipc_ideal = field "ipc_ideal" Obs.Json.to_num j in
  let* ipc_clustered = field "ipc_clustered" Obs.Json.to_num j in
  let* n_copies = field "n_copies" Obs.Json.to_int j in
  let* n_ops = field "n_ops" Obs.Json.to_int j in
  Some
    {
      Metrics.name; ideal_ii; clustered_ii; degradation; ipc_ideal; ipc_clustered;
      n_copies; n_ops;
    }

let decode_attempt j =
  let* stage = Option.bind (field "stage" Obs.Json.to_str j) stage_of_name in
  let* rung = field "rung" Obs.Json.to_str j in
  let* code = field "code" Obs.Json.to_str j in
  let* detail = field "detail" Obs.Json.to_str j in
  Some (Verify.Stage_error.attempt ~rung ~code stage detail)

let decode_error j =
  let* stage = Option.bind (field "stage" Obs.Json.to_str j) stage_of_name in
  let* code = field "code" Obs.Json.to_str j in
  let* message = field "message" Obs.Json.to_str j in
  let* subject = field "subject" Obs.Json.to_str j in
  let* attempts = field "attempts" Obs.Json.to_list j in
  let attempts = List.map decode_attempt attempts in
  if List.exists Option.is_none attempts then None
  else
    Some
      (Verify.Stage_error.make
         ~attempts:(List.filter_map Fun.id attempts)
         ~code ~stage ~subject message)

let decode j : outcome option =
  match (Obs.Json.member "ok" j, Obs.Json.member "err" j) with
  | Some m, None -> Option.map (fun m -> Ok m) (decode_metrics m)
  | None, Some e -> Option.map (fun e -> Error e) (decode_error e)
  | _ -> None

let codec = { Engine.Run.encode; decode }

(* ------------------------------------------------------------------ *)
(* Batch runner                                                        *)

type result = {
  outcomes : (string * outcome) array;
  hits : int;
  executed : int;
}

let run ?obs ?(jobs = 1) ?cache ?job_clock ?partitioner ?scheduler ~machine loops =
  let loops = Array.of_list loops in
  let js =
    Array.map
      (fun loop ->
        {
          Engine.Run.key = job_key ?partitioner ?scheduler ~machine loop;
          work =
            (fun tr ->
              match Partition.Driver.pipeline ?obs:tr ?partitioner ?scheduler ~machine loop with
              | Ok r -> Ok (Metrics.of_result r)
              | Error e -> Error e);
        })
      loops
  in
  let outs, stats = Engine.Run.map ?cache ~codec ?obs ?job_clock ~jobs js in
  let outcomes =
    Array.mapi
      (fun i out ->
        let name = Ir.Loop.name loops.(i) in
        let outcome =
          match out with
          | Ok o -> o
          | Error exn ->
              (* Fault isolation: a raising job damns only itself, as a
                 structured error on the existing contract. *)
              Error
                (Verify.Stage_error.make ~code:"PIPE001"
                   ~stage:Verify.Stage_error.Verification ~subject:name
                   ("uncaught exception: " ^ Printexc.to_string exn))
        in
        (name, outcome))
      outs
  in
  { outcomes; hits = stats.Engine.Run.hits; executed = stats.Engine.Run.executed }
