(** The decision-provenance event taxonomy.

    Where {!Counter} answers "how many", an event answers "why this
    one": each constructor records one heuristic decision a pipeline
    stage took, with the inputs that drove it. Payloads are primitive
    (register names, op ids, bank indices) so this module depends on
    nothing — the domain libraries construct events, {!Trace} stores
    them, and the exporters / [rbp explain] render them.

    Events are evidence, not state: nothing in the pipeline ever reads
    them back, so a stage may emit as many or as few as its narrative
    needs without affecting what it computes. *)

type term = Attract | Repel
(** The two RCG edge-weight terms of Section 5: def/use pairs within
    one operation attract; def/def pairs within one instruction of the
    ideal schedule repel. *)

type t =
  | Rcg_factor of {
      op : int;  (** op id *)
      flexibility : int;
      depth : int;
      density : float;
      factor : float;  (** the resulting {!Weights.contribution} *)
    }
      (** One operation's weight factor, recorded as the RCG builder
          visits it — the per-op input to every edge it contributes. *)
  | Rcg_edge of {
      a : string;  (** register name *)
      b : string;
      term : term;
      w : float;  (** signed contribution added to the edge *)
    }
      (** One edge-weight contribution (a pair may accumulate several). *)
  | Greedy_penalty of {
      penalty : float;  (** balance penalty per already-placed register *)
      mean_edge : float;  (** mean positive RCG edge weight *)
      nodes : int;
      banks : int;
    }  (** Emitted once per greedy run, before any placement. *)
  | Greedy_place of {
      node : string;  (** register name *)
      bank : int;  (** chosen bank *)
      benefit : float;  (** winning benefit (0 when pinned) *)
      benefits : float list;  (** per-bank benefits, index = bank; [] when pinned *)
      ties : int list;  (** banks sharing the best benefit, when >= 2 tied *)
      pinned : bool;
    }  (** One placement decision, in placement (node-weight) order. *)
  | Copy_route of {
      reg : string;  (** source register (the def being routed) *)
      copy : string;  (** fresh destination register of the copy *)
      src_bank : int;
      dst_bank : int;
      reaching : string;  (** ["invariant"], ["carried"] or ["op<ID>"] *)
    }  (** One inserted cross-bank copy with its def/use route. *)
  | Ii_escalate of {
      ii : int;  (** the candidate II that was abandoned *)
      cause : string;
          (** ["rec_mii"] (height fixpoint diverged), ["self_edge"],
              ["resource"] (a request no table row satisfies), or
              ["budget"] (placement budget exhausted) *)
    }  (** The modulo scheduler giving up on one candidate II. *)
  | Sched_evict of {
      op : int;  (** evicted op id *)
      by : int;  (** op id whose placement forced the eviction *)
      cycle : int;  (** cycle [by] was placed at *)
      reason : string;  (** ["conflict"] (resources) or ["dependence"] *)
    }  (** One link of an eviction chain (Rau force-placement). *)
  | Spill of {
      reg : string;
      bank : int;
      round : int;  (** colouring round that spilled it *)
    }
  | Alloc_pressure of {
      bank : int;
      round : int;
      pressure : int;  (** max-clique lower bound *)
      conflict_nodes : int;
      conflict_edges : int;
    }  (** Per-bank interference summary of one colouring round. *)

val name : t -> string
(** Stable dotted tag used by every exporter: [rcg.factor], [rcg.edge],
    [greedy.penalty], [greedy.place], [copies.route], [sched.escalate],
    [sched.evict], [alloc.spill], [alloc.pressure]. *)

val to_json : t -> Json.t
(** [{"type":"event","name":<name>, ...payload fields}] — one flat
    object, field names as in the constructor. *)

val to_string : t -> string
(** One human-readable line (no trailing newline) — the narrative form
    [rbp explain] prints. *)
