(** Exporters over a {!Trace.t}: three views of the same data.

    - {!tree}: human-readable indented span tree (durations in ms) plus
      the counter and gauge registries — what [rbp trace] prints by
      default, byte-stable under {!Clock.fake};
    - {!jsonl}: one JSON object per line ([type] = ["span"], ["event"],
      ["counter"] or ["gauge"]; events in emission order between the
      spans and the counters) — greppable, streamable, and
      round-trippable through {!parse_jsonl};
    - {!chrome}: the Chrome trace-event format (object form with a
      [traceEvents] list of ["X"] span events and ["C"] counter
      samples, microsecond timestamps), loadable in [chrome://tracing]
      or Perfetto. *)

val tree : Trace.t -> string

val jsonl : Trace.t -> string

val parse_jsonl : string -> (Json.t list, string) result
(** Parse each non-empty line; the round-trip contract for {!jsonl}. *)

val chrome : Trace.t -> string

val prometheus :
  (string * string * (string * (string * string) list * float) list) list ->
  string
(** Prometheus text exposition from a list of metric families
    [(name, type, samples)], each sample a
    [(name_suffix, labels, value)] triple — the suffix lets a [summary]
    family emit [{quantile=...}], [_sum] and [_count] lines under one
    [# TYPE] header. Output order is exactly the input order; callers
    sort their families for a stable exposition. Values render with
    {!Json.num_to_string}. *)
