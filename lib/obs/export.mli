(** Exporters over a {!Trace.t}: three views of the same data.

    - {!tree}: human-readable indented span tree (durations in ms) plus
      the counter and gauge registries — what [rbp trace] prints by
      default, byte-stable under {!Clock.fake};
    - {!jsonl}: one JSON object per line ([type] = ["span"], ["event"],
      ["counter"] or ["gauge"]; events in emission order between the
      spans and the counters) — greppable, streamable, and
      round-trippable through {!parse_jsonl};
    - {!chrome}: the Chrome trace-event format (object form with a
      [traceEvents] list of ["X"] span events and ["C"] counter
      samples, microsecond timestamps), loadable in [chrome://tracing]
      or Perfetto. *)

val tree : Trace.t -> string

val jsonl : Trace.t -> string

val parse_jsonl : string -> (Json.t list, string) result
(** Parse each non-empty line; the round-trip contract for {!jsonl}. *)

(** {2 Span-tree codec}

    Whole (sub)trees as nested JSON — what a traced compile reply and
    the flight recorder carry. Each span is
    [{"name","start","dur","attrs",…"children"}] (the [children] key is
    omitted when empty); {!span_of_json} reconstructs an equal
    {!Trace.span}. *)

val span_to_json : Trace.span -> Json.t

val span_of_json : Json.t -> (Trace.span, string) result

val trace_json : ?span_cap:int -> Trace.t -> Json.t
(** The context's completed roots as
    [{"spans":[…],"truncated":bool}]. Emission stops after [span_cap]
    spans in pre-order (default 128) and sets [truncated] — the bound
    that keeps reply frames and flight-ring entries small no matter how
    deep a ladder run span'd. *)

val trace_spans_of_json : Json.t -> (Trace.span list, string) result
(** Parse a {!trace_json} document back into its root spans. *)

val chrome : Trace.t -> string

val prometheus :
  (string * string * (string * (string * string) list * float) list) list ->
  string
(** Prometheus text exposition from a list of metric families
    [(name, type, samples)], each sample a
    [(name_suffix, labels, value)] triple — the suffix lets a [summary]
    family emit [{quantile=...}], [_sum] and [_count] lines under one
    [# TYPE] header. Output order is exactly the input order; callers
    sort their families for a stable exposition. Values render with
    {!Json.num_to_string}. *)
