type t = unit -> float

let fake ?(start = 0.0) ?(step = 0.001) () =
  let t = ref start in
  fun () ->
    let now = !t in
    t := now +. step;
    now

let frozen v () = v
