(** Injectable monotonic clock, in seconds.

    The observability layer never reads time itself: every {!Trace.t}
    carries one of these. Binaries construct the real thing from
    [Unix.gettimeofday] (the library deliberately does not link [unix]);
    tests use {!fake} so every exported artifact is byte-stable. *)

type t = unit -> float

val fake : ?start:float -> ?step:float -> unit -> t
(** A deterministic clock: the first call returns [start] (default 0.0)
    and every call advances it by [step] (default 0.001, i.e. 1ms per
    observation). Under this clock a span's duration equals [step] times
    the number of clock reads between its open and close — byte-stable
    output for tests and pinned CLI transcripts. *)

val frozen : float -> t
(** Always returns the given instant (durations collapse to zero). *)
