type t =
  | Sched_placements
  | Sched_evictions
  | Sched_ii_escalations
  | Sched_budget_exhausted
  | Greedy_decisions
  | Greedy_tie_breaks
  | Greedy_pinned
  | Copies_inserted
  | Spilled_registers
  | Alloc_rounds
  | Ladder_rung_entered
  | Ladder_rung_failed
  | Analysis_iterations
  | Analysis_widened
  | Analysis_ddg_diff
  | Engine_cache_corrupt
  | Serve_admitted
  | Serve_shed
  | Serve_completed
  | Serve_failed
  | Serve_timeouts
  | Serve_cache_hits
  | Serve_bad_frames
  | Serve_disconnects
  | Serve_worker_restarts
  | Serve_quarantined

let name = function
  | Sched_placements -> "sched.placements"
  | Sched_evictions -> "sched.evictions"
  | Sched_ii_escalations -> "sched.ii_escalations"
  | Sched_budget_exhausted -> "sched.budget_exhausted"
  | Greedy_decisions -> "greedy.decisions"
  | Greedy_tie_breaks -> "greedy.tie_breaks"
  | Greedy_pinned -> "greedy.pinned"
  | Copies_inserted -> "copies.inserted"
  | Spilled_registers -> "alloc.spilled"
  | Alloc_rounds -> "alloc.rounds"
  | Ladder_rung_entered -> "ladder.rung_entered"
  | Ladder_rung_failed -> "ladder.rung_failed"
  | Analysis_iterations -> "analysis.iterations"
  | Analysis_widened -> "analysis.widened"
  | Analysis_ddg_diff -> "analysis.ddg_diff"
  | Engine_cache_corrupt -> "engine.cache_corrupt"
  | Serve_admitted -> "serve.admitted"
  | Serve_shed -> "serve.shed"
  | Serve_completed -> "serve.completed"
  | Serve_failed -> "serve.failed"
  | Serve_timeouts -> "serve.timeouts"
  | Serve_cache_hits -> "serve.cache_hits"
  | Serve_bad_frames -> "serve.bad_frames"
  | Serve_disconnects -> "serve.disconnects"
  | Serve_worker_restarts -> "serve.worker_restarts"
  | Serve_quarantined -> "serve.quarantined"

let all =
  [
    Sched_placements; Sched_evictions; Sched_ii_escalations; Sched_budget_exhausted;
    Greedy_decisions; Greedy_tie_breaks; Greedy_pinned; Copies_inserted;
    Spilled_registers; Alloc_rounds; Ladder_rung_entered; Ladder_rung_failed;
    Analysis_iterations; Analysis_widened; Analysis_ddg_diff; Engine_cache_corrupt;
    Serve_admitted; Serve_shed; Serve_completed; Serve_failed; Serve_timeouts;
    Serve_cache_hits; Serve_bad_frames; Serve_disconnects; Serve_worker_restarts;
    Serve_quarantined;
  ]

type gauge =
  | Alloc_conflict_nodes
  | Alloc_conflict_edges
  | Clustered_mii

let gauge_name = function
  | Alloc_conflict_nodes -> "alloc.conflict_nodes"
  | Alloc_conflict_edges -> "alloc.conflict_edges"
  | Clustered_mii -> "sched.clustered_mii"

let all_gauges = [ Alloc_conflict_nodes; Alloc_conflict_edges; Clustered_mii ]
