(** Trace identities: 16-hex-digit request correlators.

    A trace id names one request's journey through the service —
    admission, queueing, the ladder, delivery — and appears in the
    reply, the flight recorder and every structured log line touching
    that request, so a single grep reconstructs the whole story.

    Ids are drawn from a splitmix64 stream (the same generator
    {!Util.Prng} uses elsewhere): cheap, collision-resistant for any
    realistic retention window, and — crucially for the pinned cram
    transcripts — fully deterministic for a given seed. The daemon
    seeds from its clock in production and from a fixed seed under
    [--deterministic]. *)

type t = string
(** Exactly 16 lowercase hex digits, e.g. ["e220a8397b1dcdaf"]. *)

val is_valid : string -> bool
(** Accepts client-supplied correlators: 1–64 characters drawn from
    [a-z A-Z 0-9 . _ -]. Anything else is replaced by a
    server-generated id rather than propagated into logs. *)

val placeholder : t
(** ["-"] — the trace id of lines that concern no particular request
    (listen failures, lifecycle messages). Valid by {!is_valid}. *)

type gen
(** A mutex-guarded generator; safe to share across connection
    threads. *)

val gen : seed:int -> gen
(** Equal seeds yield equal id sequences. *)

val next : gen -> t
