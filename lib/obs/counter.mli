(** The counter and gauge catalog — one constructor per quantity the
    pipeline stages report, so a typo cannot silently create a new
    metric and exporters can enumerate what may appear.

    Counters accumulate across a whole {!Trace.t}; an optional string
    label adds one dimension (the bank pair for copies, the rung name
    for ladder transitions, the bank for allocator gauges). *)

type t =
  | Sched_placements  (** modulo-scheduler placement steps (budget spent) *)
  | Sched_evictions  (** ops unscheduled to make room (Rau force-placement) *)
  | Sched_ii_escalations  (** candidate IIs abandoned, all causes *)
  | Sched_budget_exhausted  (** candidate IIs abandoned on budget exhaustion *)
  | Greedy_decisions  (** unpinned RCG nodes placed by benefit *)
  | Greedy_tie_breaks  (** placements where >= 2 banks tied for best benefit *)
  | Greedy_pinned  (** RCG nodes placed by pin, not benefit *)
  | Copies_inserted  (** label ["SRC->DST"]: copies per source/dest bank pair *)
  | Spilled_registers  (** registers the per-bank allocator spilled *)
  | Alloc_rounds  (** colouring rounds run by the allocator *)
  | Ladder_rung_entered  (** label = rung name: resilience-ladder rungs tried *)
  | Ladder_rung_failed  (** label = rung name: rungs that failed *)
  | Analysis_iterations  (** worklist iterations across the dataflow solves *)
  | Analysis_widened  (** facts forced to a widened value to converge *)
  | Analysis_ddg_diff  (** discrepancies between analysis and DDG edge sets *)
  | Engine_cache_corrupt  (** cache entries rejected as corrupt (degraded to miss) *)
  | Serve_admitted  (** compile requests admitted into the service queue *)
  | Serve_shed  (** requests answered [overload] by admission control *)
  | Serve_completed  (** requests answered with verified code *)
  | Serve_failed  (** requests answered with a structured error *)
  | Serve_timeouts  (** requests answered with a deadline-exceeded reply *)
  | Serve_cache_hits  (** requests answered straight from the result cache *)
  | Serve_bad_frames  (** unparseable / oversized / unknown-op frames *)
  | Serve_disconnects  (** replies dropped because the client went away *)
  | Serve_worker_restarts  (** worker domains restarted by the supervisor *)
  | Serve_quarantined  (** poison requests quarantined after repeated crashes *)

val name : t -> string
(** Stable dotted identifier, e.g. ["sched.placements"] — the name used
    by every exporter. *)

val all : t list

type gauge =
  | Alloc_conflict_nodes  (** label ["bankB"]: interference-graph nodes *)
  | Alloc_conflict_edges  (** label ["bankB"]: interference-graph edges *)
  | Clustered_mii  (** the MII the clustered reschedule started from *)

val gauge_name : gauge -> string
val all_gauges : gauge list
