type t = string

let placeholder = "-"

let is_valid s =
  let n = String.length s in
  n >= 1 && n <= 64
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       s

(* splitmix64, the same stream construction as Util.Prng (obs cannot
   depend on util — it sits below everything). *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

type gen = { lock : Mutex.t; mutable state : int64 }

let gen ~seed = { lock = Mutex.create (); state = Int64.of_int seed }

let hex16 v =
  let digit n =
    let d = Int64.to_int (Int64.logand (Int64.shift_right_logical v n) 0xFL) in
    if d < 10 then Char.chr (Char.code '0' + d) else Char.chr (Char.code 'a' + d - 10)
  in
  String.init 16 (fun i -> digit ((15 - i) * 4))

let next g =
  Mutex.lock g.lock;
  g.state <- Int64.add g.state golden_gamma;
  let v = mix g.state in
  Mutex.unlock g.lock;
  hex16 v
