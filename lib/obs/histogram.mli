(** Log-linear latency histogram (HDR-style).

    Each power-of-two octave above 0.001 is split into 16 linear
    sub-buckets, bounding the relative error of any quantile estimate by
    6.25% plus one bucket width, over a range of [1e-3, ~2e9] (units are
    the caller's — the service records milliseconds). The exact count,
    sum, minimum and maximum are tracked alongside the buckets, so
    [mean] and [max_value] are exact and quantile estimates are clamped
    to the observed extremes.

    Bucket selection depends only on the recorded value, so histograms
    fed any partition of a sample set and then {!merge}d hold state
    identical to one histogram fed everything — the property the qcheck
    suite pins. Not thread-safe; {!Serve.Stats} guards its instances
    with its own mutex. *)

type t

val make : unit -> t
val record : t -> float -> unit
(** Negative and NaN samples are clamped to 0 rather than dropped, so
    [count] always equals the number of [record] calls. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
val is_empty : t -> bool

val min_value : t -> float
(** Exact observed minimum; 0 when empty. *)

val max_value : t -> float
(** Exact observed maximum; 0 when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for q in [0,1]: the upper edge of the bucket holding
    the ceil(q*count)-th smallest sample, clamped to
    [[min_value, max_value]]. 0 when empty. *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float

val merge : into:t -> t -> unit
(** Fold [src]'s state into [into]; equivalent to replaying every sample
    of [src] into [into]. *)

val bucket_width : float -> float
(** Width of the bucket that would hold a given value — the error bound
    of a quantile estimate landing in that bucket. *)

val summary_json : t -> Json.t
(** [{"count","sum","p50","p90","p99","max"}] — the shape the service's
    [metrics] reply embeds per series. *)
