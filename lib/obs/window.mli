(** Rolling-rate counter: a ring of time-sliced buckets.

    [make ~clock ()] builds a 60-cell ring of 1-second slices; [add]
    credits the slice the injected clock currently points at, and
    [rate ~over_s] divides the events of the last [ceil(over_s/slice_s)]
    slices — the current (possibly partial) slice included — by exactly
    that many slice durations. Lookbacks are clamped to the ring span,
    so a 60-slice ring answers both the 10 s and 60 s rates the service
    exposes. Expired cells are reclaimed lazily on the next touch; there
    is no sweeper thread.

    All time comes from the injected {!Clock.t}: under a fake clock the
    same call sequence yields byte-identical rates, which is what the
    determinism test pins. Not thread-safe; callers serialize access
    (the service wraps windows in {!Serve.Stats}'s mutex). *)

type t

val make : ?slice_s:float -> ?slices:int -> clock:Clock.t -> unit -> t
(** Defaults: 1.0 s slices, 60 of them. Raises [Invalid_argument] on a
    non-positive slice or an empty ring. *)

val add : ?n:int -> t -> unit
(** Credit [n] (default 1) events to the current slice. *)

val total : over_s:float -> t -> int
(** Events in the last [over_s] seconds (rounded up to whole slices,
    clamped to the ring span). *)

val rate : over_s:float -> t -> float
(** [total] divided by the covered duration — events per second. *)

val span_s : t -> float
(** The longest lookback the ring can answer, in seconds. *)

val lifetime_total : t -> int
(** Events ever added, regardless of expiry. *)
