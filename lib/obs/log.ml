type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_name = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type format = Text | Jsonl

type t = {
  level : level;
  format : format;
  clock : Clock.t;
  sink : string -> unit;
  lock : Mutex.t;
}

let make ?(level = Info) ?(format = Text) ?(clock = fun () -> 0.0)
    ?(sink = prerr_endline) () =
  { level; format; clock; sink; lock = Mutex.create () }

let null = make ~level:Error ~sink:ignore ()

let enabled t lvl = severity lvl >= severity t.level

let log t lvl ?(trace_id = Trace_id.placeholder) ?(fields = []) msg =
  if enabled t lvl then begin
    Mutex.lock t.lock;
    (* The clock is read under the lock, after the level check: lines
       from concurrent threads get non-decreasing timestamps and
       filtered lines consume no ticks. *)
    let line =
      match t.format with
      | Text -> msg
      | Jsonl ->
          Json.to_string
            (Json.Obj
               ([
                  ("ts", Json.Num (t.clock ()));
                  ("level", Json.Str (level_name lvl));
                  ("msg", Json.Str msg);
                  ("trace_id", Json.Str trace_id);
                ]
               @ fields))
    in
    t.sink line;
    Mutex.unlock t.lock
  end

let debug t ?trace_id ?fields msg = log t Debug ?trace_id ?fields msg
let info t ?trace_id ?fields msg = log t Info ?trace_id ?fields msg
let warn t ?trace_id ?fields msg = log t Warn ?trace_id ?fields msg
let error t ?trace_id ?fields msg = log t Error ?trace_id ?fields msg
