let cell_name name label =
  match label with None -> name | Some l -> Printf.sprintf "%s{%s}" name l

let ms d = Printf.sprintf "%.3fms" (d *. 1000.0)

let tree t =
  let b = Buffer.create 1024 in
  Trace.iter_spans
    (fun ~depth s ->
      Buffer.add_string b (String.make (2 * depth) ' ');
      Buffer.add_string b s.Trace.name;
      List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%s" k v)) s.Trace.attrs;
      Buffer.add_string b (Printf.sprintf " [%s]\n" (ms (Trace.duration s))))
    t;
  (match Trace.event_count t with
  | 0 -> ()
  | n ->
      (* The tree stays a timing view; the decision stream is rendered
         by [rbp explain] and carried in full by the JSONL export. *)
      Buffer.add_string b
        (Printf.sprintf "events: %d decision event(s) (see jsonl export or rbp explain)\n" n));
  (match Trace.counters t with
  | [] -> ()
  | cs ->
      Buffer.add_string b "counters:\n";
      List.iter
        (fun (name, label, v) ->
          Buffer.add_string b (Printf.sprintf "  %-32s %d\n" (cell_name name label) v))
        cs);
  (match Trace.gauges t with
  | [] -> ()
  | gs ->
      Buffer.add_string b "gauges:\n";
      List.iter
        (fun (name, label, last, mx) ->
          Buffer.add_string b
            (Printf.sprintf "  %-32s last %d, max %d\n" (cell_name name label) last mx))
        gs);
  Buffer.contents b

let span_attrs_json attrs = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)

let jsonl t =
  let b = Buffer.create 1024 in
  let line v =
    Buffer.add_string b (Json.to_string v);
    Buffer.add_char b '\n'
  in
  Trace.iter_spans
    (fun ~depth s ->
      line
        (Json.Obj
           [
             ("type", Json.Str "span");
             ("name", Json.Str s.Trace.name);
             ("depth", Json.Num (float_of_int depth));
             ("start", Json.Num s.Trace.start);
             ("dur", Json.Num (Trace.duration s));
             ("attrs", span_attrs_json s.Trace.attrs);
           ]))
    t;
  Trace.iter_events (fun e -> line (Events.to_json e)) t;
  List.iter
    (fun (name, label, v) ->
      line
        (Json.Obj
           [
             ("type", Json.Str "counter");
             ("name", Json.Str name);
             ("label", match label with None -> Json.Null | Some l -> Json.Str l);
             ("value", Json.Num (float_of_int v));
           ]))
    (Trace.counters t);
  List.iter
    (fun (name, label, last, mx) ->
      line
        (Json.Obj
           [
             ("type", Json.Str "gauge");
             ("name", Json.Str name);
             ("label", match label with None -> Json.Null | Some l -> Json.Str l);
             ("last", Json.Num (float_of_int last));
             ("max", Json.Num (float_of_int mx));
           ]))
    (Trace.gauges t);
  Buffer.contents b

(* The span-tree codec: one JSON object per span, children nested, so
   a reply or flight-recorder entry can carry a whole (possibly
   truncated) tree and a client can reconstruct it span-for-span. *)
let rec span_to_json (s : Trace.span) =
  Json.Obj
    (List.concat
       [
         [
           ("name", Json.Str s.Trace.name);
           ("start", Json.Num s.Trace.start);
           ("dur", Json.Num (Trace.duration s));
           ("attrs", span_attrs_json s.Trace.attrs);
         ];
         (match s.Trace.children with
         | [] -> []
         | kids -> [ ("children", Json.List (List.map span_to_json kids)) ]);
       ])

let rec span_of_json j =
  let ( let* ) = Result.bind in
  let req name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "span lacks a usable %S field" name)
  in
  let* name = req "name" Json.to_str in
  let* start = req "start" Json.to_num in
  let* dur = req "dur" Json.to_num in
  let attrs =
    match Json.member "attrs" j with
    | Some (Json.Obj kvs) ->
        List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) (Json.to_str v)) kvs
    | _ -> []
  in
  let* children =
    match Json.member "children" j with
    | None -> Ok []
    | Some (Json.List kids) ->
        List.fold_left
          (fun acc k ->
            let* acc = acc in
            let* s = span_of_json k in
            Ok (s :: acc))
          (Ok []) kids
        |> Result.map List.rev
    | Some _ -> Error "span \"children\" is not a list"
  in
  Ok { Trace.name; start; attrs; stop = start +. dur; children }

let trace_json ?(span_cap = 128) t =
  (* Pre-order budget: once [span_cap] spans have been emitted the rest
     of the forest is dropped and the document says so — a pathological
     ladder run cannot blow up a reply frame or the flight ring. *)
  let budget = ref (max 0 span_cap) in
  let truncated = ref false in
  let rec conv (s : Trace.span) =
    if !budget <= 0 then begin
      truncated := true;
      None
    end
    else begin
      decr budget;
      let children = List.filter_map conv s.Trace.children in
      Some
        (Json.Obj
           (List.concat
              [
                [
                  ("name", Json.Str s.Trace.name);
                  ("start", Json.Num s.Trace.start);
                  ("dur", Json.Num (Trace.duration s));
                  ("attrs", span_attrs_json s.Trace.attrs);
                ];
                (match children with
                | [] -> []
                | kids -> [ ("children", Json.List kids) ]);
              ]))
    end
  in
  let spans = List.filter_map conv (Trace.roots t) in
  Json.Obj [ ("spans", Json.List spans); ("truncated", Json.Bool !truncated) ]

let trace_spans_of_json j =
  match Json.member "spans" j with
  | Some (Json.List spans) ->
      List.fold_left
        (fun acc s ->
          Result.bind acc (fun acc ->
              Result.map (fun s -> s :: acc) (span_of_json s)))
        (Ok []) spans
      |> Result.map List.rev
  | _ -> Error "trace document lacks a \"spans\" list"

let parse_jsonl s =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match Json.of_string l with
        | Ok v -> go (v :: acc) rest
        | Error e -> Error (Printf.sprintf "%s in line %S" e l))
  in
  go [] lines

(* Prometheus text exposition. One "# TYPE" header per family, then its
   samples; a sample's metric name is the family name plus a suffix so
   summary families can interleave {quantile=...}, _sum and _count lines
   under one header. Label values get the exposition-format escapes. *)
let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prometheus families =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, kind, samples) ->
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind);
      List.iter
        (fun (suffix, labels, value) ->
          Buffer.add_string b name;
          Buffer.add_string b suffix;
          (match labels with
          | [] -> ()
          | labels ->
              Buffer.add_char b '{';
              List.iteri
                (fun i (k, v) ->
                  if i > 0 then Buffer.add_char b ',';
                  Buffer.add_string b (Printf.sprintf "%s=\"%s\"" k (prom_escape v)))
                labels;
              Buffer.add_char b '}');
          Buffer.add_char b ' ';
          Buffer.add_string b (Json.num_to_string value);
          Buffer.add_char b '\n')
        samples)
    families;
  Buffer.contents b

(* Chrome trace-event format (the JSON-object form with a "traceEvents"
   list), loadable in chrome://tracing and Perfetto. Spans are complete
   ("X") events; counter cells become one counter ("C") sample stamped
   at the end of the trace. Timestamps are microseconds. *)
let chrome t =
  let us x = Json.Num (x *. 1e6) in
  let span_events = ref [] in
  let end_ts = ref 0.0 in
  Trace.iter_spans
    (fun ~depth:_ s ->
      end_ts := Float.max !end_ts (s.Trace.start +. Trace.duration s);
      span_events :=
        Json.Obj
          [
            ("name", Json.Str s.Trace.name);
            ("cat", Json.Str "rbp");
            ("ph", Json.Str "X");
            ("ts", us s.Trace.start);
            ("dur", us (Trace.duration s));
            ("pid", Json.Num 1.0);
            ("tid", Json.Num 1.0);
            ("args", span_attrs_json s.Trace.attrs);
          ]
        :: !span_events)
    t;
  let counter_events =
    List.map
      (fun (name, label, v) ->
        Json.Obj
          [
            ("name", Json.Str (cell_name name label));
            ("cat", Json.Str "rbp");
            ("ph", Json.Str "C");
            ("ts", us !end_ts);
            ("pid", Json.Num 1.0);
            ("tid", Json.Num 1.0);
            ("args", Json.Obj [ ("value", Json.Num (float_of_int v)) ]);
          ])
      (Trace.counters t)
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.rev !span_events @ counter_events));
         ("displayTimeUnit", Json.Str "ms");
       ])
