(* A ring of time slices. Each cell remembers which absolute slice id
   last wrote it; a cell whose id is stale is logically zero, so the
   ring never needs a sweeper thread — expiry happens lazily on the
   next write or read that lands on the cell. All time comes from the
   injected clock, so a fake clock makes every rate byte-stable. *)

type t = {
  clock : Clock.t;
  slice_s : float;
  slices : int;
  epochs : int array;
  counts : int array;
  mutable lifetime : int;
}

let make ?(slice_s = 1.0) ?(slices = 60) ~clock () =
  if slices < 1 then invalid_arg "Obs.Window.make: slices < 1";
  if not (slice_s > 0.0) then invalid_arg "Obs.Window.make: slice_s <= 0";
  {
    clock;
    slice_s;
    slices;
    epochs = Array.make slices min_int;
    counts = Array.make slices 0;
    lifetime = 0;
  }

let span_s t = float_of_int t.slices *. t.slice_s

let slice_id t now = int_of_float (Float.floor (now /. t.slice_s))

let cell t id = ((id mod t.slices) + t.slices) mod t.slices

let add ?(n = 1) t =
  let id = slice_id t (t.clock ()) in
  let i = cell t id in
  if t.epochs.(i) <> id then begin
    t.epochs.(i) <- id;
    t.counts.(i) <- 0
  end;
  t.counts.(i) <- t.counts.(i) + n;
  t.lifetime <- t.lifetime + n

(* Number of slices a lookback of [over_s] covers, clamped to the ring. *)
let slices_for t over_s =
  let n = int_of_float (Float.ceil (over_s /. t.slice_s)) in
  if n < 1 then 1 else if n > t.slices then t.slices else n

let total ~over_s t =
  let id = slice_id t (t.clock ()) in
  let n = slices_for t over_s in
  let lo = id - n + 1 in
  let acc = ref 0 in
  for i = 0 to t.slices - 1 do
    if t.epochs.(i) >= lo && t.epochs.(i) <= id then acc := !acc + t.counts.(i)
  done;
  !acc

let rate ~over_s t =
  let n = slices_for t over_s in
  float_of_int (total ~over_s t) /. (float_of_int n *. t.slice_s)

let lifetime_total t = t.lifetime
