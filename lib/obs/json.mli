(** Minimal JSON, zero external dependencies.

    Enough for the exporters ({!Export}) and the bench telemetry files:
    a compact deterministic writer (stable key order — whatever order
    the caller built — shortest round-tripping floats, integers without
    a fractional part) and a strict parser used by the round-trip tests
    and by consumers of [BENCH_*.json]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no whitespace), deterministic. Non-finite numbers render as
    [null] so the output is always valid JSON. *)

val num_to_string : float -> string
(** The writer's number rendering on its own: shortest decimal that
    round-trips, integers without a fractional part, [null] for
    non-finite values. The Prometheus exposition reuses it so a scraped
    value compares bit-equal with the JSON one. *)

val of_string : string -> (t, string) result
(** Strict parse of one complete document; [Error] carries a message
    with the byte offset. [\u] escapes decode to UTF-8. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_num : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
