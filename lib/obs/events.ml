type term = Attract | Repel

type t =
  | Rcg_factor of {
      op : int;
      flexibility : int;
      depth : int;
      density : float;
      factor : float;
    }
  | Rcg_edge of { a : string; b : string; term : term; w : float }
  | Greedy_penalty of { penalty : float; mean_edge : float; nodes : int; banks : int }
  | Greedy_place of {
      node : string;
      bank : int;
      benefit : float;
      benefits : float list;
      ties : int list;
      pinned : bool;
    }
  | Copy_route of {
      reg : string;
      copy : string;
      src_bank : int;
      dst_bank : int;
      reaching : string;
    }
  | Ii_escalate of { ii : int; cause : string }
  | Sched_evict of { op : int; by : int; cycle : int; reason : string }
  | Spill of { reg : string; bank : int; round : int }
  | Alloc_pressure of {
      bank : int;
      round : int;
      pressure : int;
      conflict_nodes : int;
      conflict_edges : int;
    }

let name = function
  | Rcg_factor _ -> "rcg.factor"
  | Rcg_edge _ -> "rcg.edge"
  | Greedy_penalty _ -> "greedy.penalty"
  | Greedy_place _ -> "greedy.place"
  | Copy_route _ -> "copies.route"
  | Ii_escalate _ -> "sched.escalate"
  | Sched_evict _ -> "sched.evict"
  | Spill _ -> "alloc.spill"
  | Alloc_pressure _ -> "alloc.pressure"

let term_name = function Attract -> "attract" | Repel -> "repel"

let to_json e =
  let num x = Json.Num x in
  let int x = Json.Num (float_of_int x) in
  let fields =
    match e with
    | Rcg_factor { op; flexibility; depth; density; factor } ->
        [
          ("op", int op); ("flexibility", int flexibility); ("depth", int depth);
          ("density", num density); ("factor", num factor);
        ]
    | Rcg_edge { a; b; term; w } ->
        [ ("a", Json.Str a); ("b", Json.Str b); ("term", Json.Str (term_name term));
          ("w", num w) ]
    | Greedy_penalty { penalty; mean_edge; nodes; banks } ->
        [
          ("penalty", num penalty); ("mean_edge", num mean_edge); ("nodes", int nodes);
          ("banks", int banks);
        ]
    | Greedy_place { node; bank; benefit; benefits; ties; pinned } ->
        [
          ("node", Json.Str node); ("bank", int bank); ("benefit", num benefit);
          ("benefits", Json.List (List.map num benefits));
          ("ties", Json.List (List.map int ties)); ("pinned", Json.Bool pinned);
        ]
    | Copy_route { reg; copy; src_bank; dst_bank; reaching } ->
        [
          ("reg", Json.Str reg); ("copy", Json.Str copy); ("src_bank", int src_bank);
          ("dst_bank", int dst_bank); ("reaching", Json.Str reaching);
        ]
    | Ii_escalate { ii; cause } -> [ ("ii", int ii); ("cause", Json.Str cause) ]
    | Sched_evict { op; by; cycle; reason } ->
        [ ("op", int op); ("by", int by); ("cycle", int cycle);
          ("reason", Json.Str reason) ]
    | Spill { reg; bank; round } ->
        [ ("reg", Json.Str reg); ("bank", int bank); ("round", int round) ]
    | Alloc_pressure { bank; round; pressure; conflict_nodes; conflict_edges } ->
        [
          ("bank", int bank); ("round", int round); ("pressure", int pressure);
          ("conflict_nodes", int conflict_nodes); ("conflict_edges", int conflict_edges);
        ]
  in
  Json.Obj (("type", Json.Str "event") :: ("name", Json.Str (name e)) :: fields)

(* %g keeps narrative lines short (weights span orders of magnitude)
   while remaining unambiguous; the JSON export carries full precision. *)
let fl x = Printf.sprintf "%g" x

let to_string = function
  | Rcg_factor { op; flexibility; depth; density; factor } ->
      Printf.sprintf "op%d: factor %s (flexibility %d, depth %d, density %s)" op
        (fl factor) flexibility depth (fl density)
  | Rcg_edge { a; b; term; w } ->
      Printf.sprintf "%s -- %s  %s%s (%s)" a b
        (if w >= 0.0 then "+" else "")
        (fl w) (term_name term)
  | Greedy_penalty { penalty; mean_edge; nodes; banks } ->
      Printf.sprintf
        "balance penalty %s per placed register (mean positive edge %s, %d nodes over %d \
         banks)"
        (fl penalty) (fl mean_edge) nodes banks
  | Greedy_place { node; bank; benefit; benefits; ties; pinned } ->
      if pinned then Printf.sprintf "%s -> bank %d (pinned)" node bank
      else
        Printf.sprintf "%s -> bank %d  benefit %s  [%s]%s" node bank (fl benefit)
          (String.concat " " (List.map fl benefits))
          (match ties with
          | [] -> ""
          | ts ->
              Printf.sprintf "  tie{%s} -> lowest index"
                (String.concat "," (List.map string_of_int ts)))
  | Copy_route { reg; copy; src_bank; dst_bank; reaching } ->
      Printf.sprintf "%s: bank %d -> bank %d (%s value), copy %s" reg src_bank dst_bank
        reaching copy
  | Ii_escalate { ii; cause } -> Printf.sprintf "II=%d abandoned: %s" ii cause
  | Sched_evict { op; by; cycle; reason } ->
      Printf.sprintf "op%d evicted by op%d at cycle %d (%s)" op by cycle reason
  | Spill { reg; bank; round } ->
      Printf.sprintf "%s spilled from bank %d (round %d)" reg bank round
  | Alloc_pressure { bank; round; pressure; conflict_nodes; conflict_edges } ->
      Printf.sprintf "bank %d round %d: pressure %d (%d nodes, %d edges)" bank round
        pressure conflict_nodes conflict_edges
