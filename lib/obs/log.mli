(** Leveled structured logging with per-line trace correlation.

    The daemon's operational narrative in one of two renderings:

    - [Text]: the bare message, one per line — byte-identical to the
      ad-hoc [prerr_endline] calls it replaces, so existing pinned
      transcripts keep matching at the default level;
    - [Jsonl]: one JSON object per line with a fixed key order —
      [{"ts":…,"level":…,"msg":…,"trace_id":…}] plus any extra fields
      in the order given — parseable by [tools/check_logs.sh] and
      greppable by trace id.

    The clock and the sink are injectable ({!Clock.fake} plus a buffer
    sink make output byte-deterministic in tests); the sink is called
    under a mutex so connection threads and worker domains can share
    one logger. Level filtering happens before the clock is read, so
    suppressed lines consume no ticks — a [--log-level info] daemon
    emits the same timestamps whether or not debug sites exist. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_name : string -> level option

type format = Text | Jsonl

type t

val make : ?level:level -> ?format:format -> ?clock:Clock.t -> ?sink:(string -> unit) -> unit -> t
(** Defaults: [Info] level, [Text] format, a frozen zero clock
    (binaries pass a real one — [lib/obs] links no [unix]), sink
    [prerr_endline]. *)

val null : t
(** Drops everything; the test daemons' quiet default. *)

val enabled : t -> level -> bool

val log :
  t -> level -> ?trace_id:string -> ?fields:(string * Json.t) list -> string -> unit
(** One line. [trace_id] defaults to {!Trace_id.placeholder}; [fields]
    are appended after the fixed keys in [Jsonl] (ignored in [Text]). *)

val debug : t -> ?trace_id:string -> ?fields:(string * Json.t) list -> string -> unit
val info : t -> ?trace_id:string -> ?fields:(string * Json.t) list -> string -> unit
val warn : t -> ?trace_id:string -> ?fields:(string * Json.t) list -> string -> unit
val error : t -> ?trace_id:string -> ?fields:(string * Json.t) list -> string -> unit
