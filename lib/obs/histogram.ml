(* Log-linear bucketing: each power-of-two octave above [lo] is split
   into [sub] equal-width linear sub-buckets, so the relative bucket
   width is bounded by 1/sub everywhere. Values below [lo] share one
   underflow bucket, values beyond the top octave one overflow bucket.
   Bucket selection is pure float arithmetic on the recorded value, so
   two histograms fed the same samples — in any order, or merged from
   any partition of the samples — hold identical state. *)

let sub = 16
let sub_f = 16.0
let lo = 0.001
let e_max = 40
let n_buckets = 2 + ((e_max + 1) * sub)

type t = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  counts : int array;
}

let make () =
  {
    count = 0;
    sum = 0.0;
    vmin = infinity;
    vmax = neg_infinity;
    counts = Array.make n_buckets 0;
  }

let clamp v = if Float.is_nan v || v < 0.0 then 0.0 else v

let index v =
  if v < lo then 0
  else
    let r = v /. lo in
    let e = int_of_float (Float.floor (Float.log2 r)) in
    if e > e_max then n_buckets - 1
    else
      let s = int_of_float ((r /. Float.ldexp 1.0 e -. 1.0) *. sub_f) in
      let s = if s < 0 then 0 else if s > sub - 1 then sub - 1 else s in
      1 + (e * sub) + s

let bounds i =
  if i <= 0 then (0.0, lo)
  else if i >= n_buckets - 1 then (lo *. Float.ldexp 1.0 (e_max + 1), infinity)
  else
    let e = (i - 1) / sub and s = (i - 1) mod sub in
    let scale = lo *. Float.ldexp 1.0 e in
    let w = scale /. sub_f in
    let lower = scale +. (float_of_int s *. w) in
    (lower, lower +. w)

let bucket_width v =
  let l, u = bounds (index (clamp v)) in
  if Float.is_finite u then u -. l else l

let record t v =
  let v = clamp v in
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  let i = index v in
  t.counts.(i) <- t.counts.(i) + 1

let count t = t.count
let sum t = t.sum
let is_empty t = t.count = 0
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0.0 else t.vmin
let max_value t = if t.count = 0 then 0.0 else t.vmax

let merge ~into src =
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.vmin < into.vmin then into.vmin <- src.vmin;
  if src.vmax > into.vmax then into.vmax <- src.vmax;
  Array.iteri
    (fun i n -> if n <> 0 then into.counts.(i) <- into.counts.(i) + n)
    src.counts

let quantile t q =
  if t.count = 0 then 0.0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let rec go i acc =
      if i >= n_buckets then t.vmax
      else
        let acc = acc + t.counts.(i) in
        if acc >= rank then
          (* The true rank-th sample lies inside bucket [i]; report the
             bucket's upper edge clamped to the observed extremes, so the
             estimate is within one bucket width and never outside
             [min, max]. *)
          let _, upper = bounds i in
          Float.min t.vmax (Float.max t.vmin upper)
        else go (i + 1) acc
    in
    go 0 0
  end

let p50 t = quantile t 0.5
let p90 t = quantile t 0.9
let p99 t = quantile t 0.99

let summary_json t =
  Json.Obj
    [
      ("count", Json.Num (float_of_int t.count));
      ("sum", Json.Num t.sum);
      ("p50", Json.Num (p50 t));
      ("p90", Json.Num (p90 t));
      ("p99", Json.Num (p99 t));
      ("max", Json.Num (max_value t));
    ]
