type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* Shortest decimal representation that round-trips, integers without a
   fractional part. Non-finite numbers have no JSON form; they print as
   null rather than emitting an invalid document. *)
let num_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else begin
    let rec go p =
      if p >= 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else go (p + 1)
    in
    go 1
  end

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let to_string v =
  let b = Buffer.create 256 in
  let str s =
    Buffer.add_char b '"';
    escape_into b s;
    Buffer.add_char b '"'
  in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (num_to_string f)
    | Str s -> str s
    | List vs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          vs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            str k;
            Buffer.add_char b ':';
            go v)
          kvs;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

exception Parse_error of string

let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else error ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else begin
        let c = s.[!pos] in
        incr pos;
        match c with
        | '"' -> Buffer.contents b
        | '\\' ->
            if !pos >= n then error "unterminated escape";
            let e = s.[!pos] in
            incr pos;
            (match e with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if !pos + 4 > n then error "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> error "malformed \\u escape"
                in
                pos := !pos + 4;
                add_utf8 b code
            | _ -> error "unknown escape");
            go ()
        | c ->
            Buffer.add_char b c;
            go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> error "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items := parse_value () :: !items;
                go ()
            | Some ']' -> incr pos
            | _ -> error "expected ',' or ']'"
          in
          go ();
          List (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ field () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items := field () :: !items;
                go ()
            | Some '}' -> incr pos
            | _ -> error "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !items)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List vs -> Some vs | _ -> None

let to_int v =
  match to_num v with
  | Some f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
