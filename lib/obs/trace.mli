(** The instrumentation context: a per-run span tree plus the counter
    and gauge registry.

    Every instrumented entry point takes an [Trace.t option] (by
    convention a parameter named [obs]); with [None] each probe is a
    single branch, so uninstrumented hot paths stay hot. The context is
    deliberately mutable and single-threaded — one context per
    compilation, like one [Buffer.t] per output.

    Probes never raise: an unbalanced close or an [add_attr] outside any
    span is ignored, because instrumentation must not change what the
    pipeline computes. *)

type span = {
  name : string;  (** taxonomy entry, e.g. ["schedule.ideal"] *)
  start : float;  (** clock reading at open *)
  mutable attrs : (string * string) list;
  mutable stop : float;  (** [nan] while the span is open *)
  mutable children : span list;  (** chronological once closed *)
}

type t

val make : clock:Clock.t -> unit -> t
(** Fresh empty context. Pass [Unix.gettimeofday] (or any monotonic
    reader) in binaries, {!Clock.fake} in tests. *)

val span : t option -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span obs name f] runs [f] inside a span; the span closes (and its
    duration is read) even when [f] raises. With [None] this is exactly
    [f ()]. Nested calls build the tree. *)

val add_attr : t option -> string -> string -> unit
(** Attach an attribute to the innermost open span — for values only
    known mid-flight, like the II a scheduler finally achieved. *)

val incr : t option -> ?label:string -> Counter.t -> int -> unit
(** Add [n] to a counter cell; [label] selects a labelled dimension
    (e.g. the ["0->1"] bank pair of a copy). *)

val emit : t option -> Events.t -> unit
(** Append one decision-provenance event to the stream. With [None]
    this is a single branch; sites that would otherwise allocate the
    event payload for nothing should guard with [obs <> None]. *)

val events : t -> Events.t list
(** Every emitted event, oldest first — the order decisions were
    taken, which is what [rbp explain] narrates. *)

val event_count : t -> int

val iter_events : (Events.t -> unit) -> t -> unit

val set_gauge : t option -> ?label:string -> Counter.gauge -> int -> unit
(** Record a gauge observation; the cell keeps the last and the max. *)

val merge : into:t -> t -> unit
(** [merge ~into child] folds a completed child context into [into]:
    the child's finished root spans become children of [into]'s
    innermost open span (or new roots when none is open, appended after
    the existing ones), counter cells are summed, gauge cells keep the
    child's last value and the max of both maxima, and the child's
    events are appended after [into]'s, preserving their emission
    order.

    This is the fold half of the engine's per-job observability
    contract: parallel jobs each write a private context (contexts are
    single-threaded by design), and the engine merges them on the
    submitting domain, in submission order, after the pool barrier —
    so every total and the event stream are deterministic functions of
    the job list, independent of how many domains ran it. The child
    must be quiescent (no open spans of its own are merged) and must
    not be used afterwards. *)

val roots : t -> span list
(** Completed top-level spans, oldest first. *)

val duration : span -> float
(** [stop - start]; 0.0 for a span still open. *)

val counters : t -> (string * string option * int) list
(** All counter cells as [(name, label, value)], sorted — the stable
    order every exporter uses. *)

val gauges : t -> (string * string option * int * int) list
(** All gauge cells as [(name, label, last, max)], sorted. *)

val counter_value : t -> ?label:string -> Counter.t -> int
(** One cell's value (0 when never touched). *)

val counter_total : t -> Counter.t -> int
(** Sum over every label of one counter. *)

val iter_spans : (depth:int -> span -> unit) -> t -> unit
(** Pre-order walk over the whole forest with depth (roots at 0). *)

val totals_by_name : t -> (string * float * int) list
(** Aggregate wall-time and call count per span name over the whole
    forest, sorted by name — what the bench telemetry reports as
    per-stage wall times. *)
