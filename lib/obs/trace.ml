type span = {
  name : string;
  start : float;
  mutable attrs : (string * string) list;
  mutable stop : float;
  mutable children : span list;
}

type t = {
  clock : Clock.t;
  mutable stack : span list; (* open spans, innermost first *)
  mutable root_spans : span list; (* completed roots, newest first *)
  counters : (Counter.t * string option, int ref) Hashtbl.t;
  gauges : (Counter.gauge * string option, (int * int) ref) Hashtbl.t;
  mutable events : Events.t list; (* newest first *)
  mutable event_count : int;
}

let make ~clock () =
  {
    clock;
    stack = [];
    root_spans = [];
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    events = [];
    event_count = 0;
  }

let enter t ~attrs name =
  let s = { name; attrs; start = t.clock (); stop = nan; children = [] } in
  t.stack <- s :: t.stack

let exit_current t =
  match t.stack with
  | [] -> () (* unbalanced close: ignore rather than raise in a probe *)
  | s :: rest ->
      s.stop <- t.clock ();
      s.children <- List.rev s.children;
      t.stack <- rest;
      (match rest with
      | parent :: _ -> parent.children <- s :: parent.children
      | [] -> t.root_spans <- s :: t.root_spans)

let span obs ?(attrs = []) name f =
  match obs with
  | None -> f ()
  | Some t ->
      enter t ~attrs name;
      Fun.protect ~finally:(fun () -> exit_current t) f

let add_attr obs k v =
  match obs with
  | None -> ()
  | Some t -> (
      match t.stack with
      | [] -> ()
      | s :: _ -> s.attrs <- s.attrs @ [ (k, v) ])

let incr obs ?label c n =
  match obs with
  | None -> ()
  | Some t -> (
      let key = (c, label) in
      match Hashtbl.find_opt t.counters key with
      | Some r -> r := !r + n
      | None -> Hashtbl.replace t.counters key (ref n))

let emit obs e =
  match obs with
  | None -> ()
  | Some t ->
      t.events <- e :: t.events;
      t.event_count <- t.event_count + 1

let events t = List.rev t.events
let event_count t = t.event_count

let iter_events f t = List.iter f (events t)

let set_gauge obs ?label g v =
  match obs with
  | None -> ()
  | Some t -> (
      let key = (g, label) in
      match Hashtbl.find_opt t.gauges key with
      | Some r -> r := (v, max v (snd !r))
      | None -> Hashtbl.replace t.gauges key (ref (v, v)))

let merge ~into child =
  (* Fold a quiescent per-job context into the submitting context, in
     one place so every fold site (the engine barrier) agrees on the
     order: spans under the innermost open span (or as new roots),
     counters summed, gauges last-wins/max-folds, events appended in
     the child's emission order. Called only from the submitting
     domain, after every worker joined. *)
  let completed = List.rev child.root_spans in
  (match into.stack with
  | s :: _ -> List.iter (fun r -> s.children <- r :: s.children) completed
  | [] -> List.iter (fun r -> into.root_spans <- r :: into.root_spans) completed);
  Hashtbl.iter
    (fun key r ->
      match Hashtbl.find_opt into.counters key with
      | Some r' -> r' := !r' + !r
      | None -> Hashtbl.replace into.counters key (ref !r))
    child.counters;
  Hashtbl.iter
    (fun key r ->
      let last, mx = !r in
      match Hashtbl.find_opt into.gauges key with
      | Some r' -> r' := (last, max mx (snd !r'))
      | None -> Hashtbl.replace into.gauges key (ref (last, mx)))
    child.gauges;
  into.events <- child.events @ into.events;
  into.event_count <- into.event_count + child.event_count

let roots t =
  (* Spans still open (a trace exported mid-flight) are presented as
     they are; their children lists are reversed in place at close, so
     only close order determines the exported structure. *)
  List.rev t.root_spans

let duration s = if Float.is_nan s.stop then 0.0 else s.stop -. s.start

let counters t =
  Hashtbl.fold (fun (c, label) r acc -> (Counter.name c, label, !r) :: acc) t.counters []
  |> List.sort compare

let gauges t =
  Hashtbl.fold
    (fun (g, label) r acc ->
      let last, mx = !r in
      (Counter.gauge_name g, label, last, mx) :: acc)
    t.gauges []
  |> List.sort compare

let counter_value t ?label c =
  match Hashtbl.find_opt t.counters (c, label) with Some r -> !r | None -> 0

let counter_total t c =
  Hashtbl.fold (fun (c', _) r acc -> if c' = c then acc + !r else acc) t.counters 0

let iter_spans f t =
  let rec go depth s =
    f ~depth s;
    List.iter (go (depth + 1)) s.children
  in
  List.iter (go 0) (roots t)

let totals_by_name t =
  let tbl = Hashtbl.create 16 in
  iter_spans
    (fun ~depth:_ s ->
      let total, count =
        Option.value ~default:(0.0, 0) (Hashtbl.find_opt tbl s.name)
      in
      Hashtbl.replace tbl s.name (total +. duration s, count + 1))
    t;
  Hashtbl.fold (fun name (total, count) acc -> (name, total, count) :: acc) tbl []
  |> List.sort compare
