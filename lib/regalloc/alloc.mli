(** Per-bank register allocation — step 5 of the paper's framework.

    "With functional units specified and registers allocated to banks,
    perform standard Chaitin/Briggs graph colouring register assignment
    for each register bank." Each bank's registers are coloured
    independently against that bank's [regs_per_bank] architectural
    registers; actual spills trigger the Chaitin spill-everywhere rewrite
    (spill temporaries stay in their register's bank) and another round.

    [allocate] works on any straight-line op list; [allocate_loop] feeds
    a loop body with its wrap-around live-out. Allocating a software
    pipeline's overlapped kernel requires modulo variable expansion
    first — pass the ops of [Sched.Expand.flatten]. *)

type t = {
  code : Ir.Op.t list;  (** input code, plus spill code if any round spilled *)
  mapping : (int * int) Ir.Vreg.Map.t;
      (** register -> (bank, architectural register index within bank) *)
  assignment : Partition.Assign.t;  (** extended to spill temporaries *)
  spill_count : int;    (** total registers actually spilled *)
  rounds : int;         (** colouring rounds until spill-free *)
  pressure : int array; (** per-bank max simultaneous live registers *)
  live_out : Ir.Vreg.Set.t;  (** the live-out the allocation ran with *)
}

val allocate :
  ?obs:Obs.Trace.t ->
  ?max_rounds:int ->
  ?subject:string ->
  machine:Mach.Machine.t ->
  assignment:Partition.Assign.t ->
  live_out:Ir.Vreg.Set.t ->
  Ir.Op.t list ->
  (t, Verify.Stage_error.t) result
(** [max_rounds] defaults to 8; exceeding it returns a structured
    [Allocation]-stage error (a bank smaller than the code's irreducible
    pressure). An assignment not covering every register of the code is
    an [Error] with code AL001. [subject] names the error's code region
    (defaults to ["code"]).

    [obs] (default off) traces one [alloc] span per call with one
    [alloc.round] child per colouring round, counts [alloc.rounds] and
    [alloc.spilled], and records the per-bank conflict-graph sizes as
    the [alloc.conflict_nodes{bankB}] / [alloc.conflict_edges{bankB}]
    gauges (last and max over rounds). *)

val allocate_loop :
  ?obs:Obs.Trace.t ->
  ?max_rounds:int ->
  machine:Mach.Machine.t ->
  assignment:Partition.Assign.t ->
  Ir.Loop.t ->
  (t, Verify.Stage_error.t) result

val check : machine:Mach.Machine.t -> t -> (unit, string) result
(** Re-verify: every register mapped, banks within range, register
    indices within [regs_per_bank], and no two registers of the same bank
    with overlapping live ranges sharing an index. *)

val diagnostics : machine:Mach.Machine.t -> t -> Verify.Diag.t list
(** The same invariants re-derived by the independent {!Verify} layer
    (codes AL001–AL005), as itemized diagnostics instead of a single
    first-failure string: mapping coverage and range, partition
    consistency, and physical-register conflicts on re-derived live
    ranges. *)
