type t = {
  code : Ir.Op.t list;
  mapping : (int * int) Ir.Vreg.Map.t;
  assignment : Partition.Assign.t;
  spill_count : int;
  rounds : int;
  pressure : int array;
  live_out : Ir.Vreg.Set.t;
}

let code_registers ops =
  List.fold_left
    (fun acc op ->
      List.fold_left (fun s r -> Ir.Vreg.Set.add r s) acc (Ir.Op.defs op @ Ir.Op.uses op))
    Ir.Vreg.Set.empty ops

let allocate ?obs ?(max_rounds = 8) ?(subject = "code") ~machine ~assignment ~live_out ops =
  let m : Mach.Machine.t = machine in
  let banks = m.clusters in
  let k = m.regs_per_bank in
  Obs.Trace.span obs "alloc"
    ~attrs:[ ("subject", subject); ("banks", string_of_int banks) ]
  @@ fun () ->
  let fail ?code message =
    Error (Verify.Stage_error.make ?code ~stage:Verify.Stage_error.Allocation ~subject message)
  in
  let missing =
    Ir.Vreg.Set.filter
      (fun r -> Partition.Assign.bank_opt assignment r = None)
      (code_registers ops)
  in
  if not (Ir.Vreg.Set.is_empty missing) then
    fail ~code:"AL001"
      (Printf.sprintf "unassigned registers: %s"
         (String.concat ", "
            (List.map Ir.Vreg.to_string (Ir.Vreg.Set.elements missing))))
  else begin
    (* Fail fast when no amount of spilling can help: all distinct source
       registers of one operation are live at that operation, and spill
       reloads land in the same bank, so an op reading more than [k]
       distinct bank-[b] registers can never colour. Without this check
       the spiller grinds through every round on such inputs (growing
       the body with useless spill code each time) before giving up. *)
    let irreducible =
      List.find_map
        (fun op ->
          let uses = List.sort_uniq Ir.Vreg.compare (Ir.Op.uses op) in
          let per_bank = Hashtbl.create 4 in
          List.iter
            (fun r ->
              let b = Partition.Assign.bank assignment r in
              Hashtbl.replace per_bank b
                (1 + Option.value ~default:0 (Hashtbl.find_opt per_bank b)))
            uses;
          Hashtbl.fold
            (fun b n acc -> if n > k && acc = None then Some (op, b, n) else acc)
            per_bank None)
        ops
    in
    match irreducible with
    | Some (op, b, n) ->
        fail
          (Printf.sprintf
             "bank %d pressure is irreducible: %s reads %d distinct bank-%d registers \
              but the bank holds %d"
             b (Ir.Op.to_string op) n b k)
    | None ->
    let rec round ops assignment ~live_out spill_count n =
      if n > max_rounds then
        fail
          (Printf.sprintf "still spilling after %d round(s) (%d registers spilled so far)"
             max_rounds spill_count)
      else begin
        Obs.Trace.span obs "alloc.round" ~attrs:[ ("round", string_of_int n) ]
        @@ fun () ->
        let pressure = Array.make banks 0 in
        let results =
          List.init banks (fun b ->
              let keep r = Partition.Assign.bank_opt assignment r = Some b in
              let g = Interference.build_filtered ~keep ops ~live_out in
              pressure.(b) <- Interference.max_clique_lower_bound g;
              (match obs with
              | None -> ()
              | Some _ ->
                  let regs = Interference.registers g in
                  let label = Printf.sprintf "bank%d" b in
                  let edges =
                    List.fold_left (fun acc r -> acc + Interference.degree g r) 0 regs / 2
                  in
                  Obs.Trace.set_gauge obs ~label Obs.Counter.Alloc_conflict_nodes
                    (List.length regs);
                  Obs.Trace.set_gauge obs ~label Obs.Counter.Alloc_conflict_edges edges;
                  Obs.Trace.emit obs
                    (Obs.Events.Alloc_pressure
                       {
                         bank = b;
                         round = n;
                         pressure = pressure.(b);
                         conflict_nodes = List.length regs;
                         conflict_edges = edges;
                       }));
              (b, Color.color ~k g))
        in
        let spilled = List.concat_map (fun (_, (r : Color.result)) -> r.spilled) results in
        Obs.Trace.incr obs Obs.Counter.Alloc_rounds 1;
        Obs.Trace.incr obs Obs.Counter.Spilled_registers (List.length spilled);
        if obs <> None then
          List.iter
            (fun r ->
              Obs.Trace.emit obs
                (Obs.Events.Spill
                   {
                     reg = Ir.Vreg.to_string r;
                     bank = Partition.Assign.bank assignment r;
                     round = n;
                   }))
            spilled;
        if spilled = [] then begin
          let mapping =
            List.fold_left
              (fun acc (b, (r : Color.result)) ->
                Ir.Vreg.Map.fold
                  (fun reg c acc -> Ir.Vreg.Map.add reg (b, c) acc)
                  r.Color.colors acc)
              Ir.Vreg.Map.empty results
          in
          Ok { code = ops; mapping; assignment; spill_count; rounds = n; pressure; live_out }
        end
        else begin
          let fresh_vreg =
            1 + Ir.Vreg.Set.fold (fun r acc -> max acc (Ir.Vreg.id r)) (code_registers ops) 0
          in
          let fresh_op = 1 + List.fold_left (fun acc op -> max acc (Ir.Op.id op)) 0 ops in
          let rw = Spill.rewrite ~spilled ~fresh_vreg ~fresh_op ops in
          let assignment =
            List.fold_left
              (fun acc (tmp, orig) ->
                Ir.Vreg.Map.add tmp (Partition.Assign.bank acc orig) acc)
              assignment rw.Spill.temps
          in
          (* A spilled register now lives in its memory slot: it must not
             stay live-out or it would be "spilled" again every round. *)
          let live_out =
            List.fold_left (fun acc r -> Ir.Vreg.Set.remove r acc) live_out spilled
          in
          round rw.Spill.ops assignment ~live_out
            (spill_count + List.length spilled)
            (n + 1)
        end
      end
    in
    round ops assignment ~live_out 0 1
  end

let allocate_loop ?obs ?max_rounds ~machine ~assignment loop =
  allocate ?obs ?max_rounds ~subject:(Ir.Loop.name loop) ~machine ~assignment
    ~live_out:(Liveness.loop_live_out loop)
    (Ir.Loop.ops loop)

let diagnostics ~machine t =
  Verify.Alloc_check.check ~machine ~assignment:t.assignment ~mapping:t.mapping
    ~live_out:t.live_out t.code

let check ~machine t =
  let m : Mach.Machine.t = machine in
  let regs = code_registers t.code in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* () =
    Ir.Vreg.Set.fold
      (fun r acc ->
        let* () = acc in
        match Ir.Vreg.Map.find_opt r t.mapping with
        | None -> Error (Printf.sprintf "register %s unmapped" (Ir.Vreg.to_string r))
        | Some (b, c) ->
            if not (Mach.Machine.valid_cluster m b) then
              Error (Printf.sprintf "register %s in invalid bank %d" (Ir.Vreg.to_string r) b)
            else if c < 0 || c >= m.regs_per_bank then
              Error (Printf.sprintf "register %s index %d out of range" (Ir.Vreg.to_string r) c)
            else Ok ())
      regs (Ok ())
  in
  (* Interference re-check per bank on the final code. *)
  let live_out = t.live_out in
  List.fold_left
    (fun acc b ->
      let* () = acc in
      let keep r = match Ir.Vreg.Map.find_opt r t.mapping with Some (b', _) -> b' = b | None -> false in
      let g = Interference.build_filtered ~keep t.code ~live_out in
      Color.check g
        (Ir.Vreg.Map.filter_map
           (fun _ (b', c) -> if b' = b then Some c else None)
           t.mapping))
    (Ok ())
    (List.init m.clusters (fun b -> b))
