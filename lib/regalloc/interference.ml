type t = {
  adj : (int, Ir.Vreg.Set.t) Hashtbl.t;
  regs : (int, Ir.Vreg.t) Hashtbl.t;
  occ : (int, int) Hashtbl.t;
  pressure : int;
}

let add_node t r =
  let id = Ir.Vreg.id r in
  if not (Hashtbl.mem t.adj id) then Hashtbl.replace t.adj id Ir.Vreg.Set.empty;
  Hashtbl.replace t.regs id r

let add_edge t a b =
  if not (Ir.Vreg.equal a b) then begin
    add_node t a;
    add_node t b;
    Hashtbl.replace t.adj (Ir.Vreg.id a) (Ir.Vreg.Set.add b (Hashtbl.find t.adj (Ir.Vreg.id a)));
    Hashtbl.replace t.adj (Ir.Vreg.id b) (Ir.Vreg.Set.add a (Hashtbl.find t.adj (Ir.Vreg.id b)))
  end

let bump_occ t r =
  let id = Ir.Vreg.id r in
  Hashtbl.replace t.occ id (1 + Option.value ~default:0 (Hashtbl.find_opt t.occ id))

let build_filtered ~keep ops ~live_out =
  let t = { adj = Hashtbl.create 64; regs = Hashtbl.create 64; occ = Hashtbl.create 64;
            pressure = 0 }
  in
  let live_before = Liveness.backward ops ~live_out in
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let live_after i = if i + 1 < n then live_before.(i + 1) else live_out in
  Ir.Vreg.Set.iter (fun r -> if keep r then add_node t r) live_out;
  (* Region entry is the definition point of every live-in register
     (loop invariants, values carried across the back edge): their
     values already coexist there, so they pairwise interfere even
     though no op in the region defines them. *)
  if n > 0 then begin
    let entry = Ir.Vreg.Set.filter keep live_before.(0) in
    Ir.Vreg.Set.iter
      (fun a -> Ir.Vreg.Set.iter (fun b -> add_edge t a b) entry)
      entry
  end;
  let pressure = ref 0 in
  for i = 0 to n - 1 do
    let op = arr.(i) in
    List.iter (fun r -> if keep r then (add_node t r; bump_occ t r)) (Ir.Op.defs op);
    List.iter (fun r -> if keep r then (add_node t r; bump_occ t r)) (Ir.Op.uses op);
    let after = Ir.Vreg.Set.filter keep (live_after i) in
    pressure := max !pressure (Ir.Vreg.Set.cardinal (Ir.Vreg.Set.filter keep live_before.(i)));
    let exempt =
      if Ir.Op.is_copy op then
        match Ir.Op.srcs op with s :: _ -> Some s | [] -> None
      else None
    in
    List.iter
      (fun d ->
        if keep d then
          Ir.Vreg.Set.iter
            (fun l ->
              let is_exempt = match exempt with Some s -> Ir.Vreg.equal s l | None -> false in
              if not is_exempt then add_edge t d l)
            after)
      (Ir.Op.defs op)
  done;
  { t with pressure = !pressure }

let build ops ~live_out = build_filtered ~keep:(fun _ -> true) ops ~live_out

let registers t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.regs [] |> List.sort Ir.Vreg.compare

let interferes t a b =
  match Hashtbl.find_opt t.adj (Ir.Vreg.id a) with
  | Some s -> Ir.Vreg.Set.mem b s
  | None -> false

let neighbors t r =
  match Hashtbl.find_opt t.adj (Ir.Vreg.id r) with
  | Some s -> Ir.Vreg.Set.elements s
  | None -> []

let degree t r = List.length (neighbors t r)

let occurrences t r = Option.value ~default:0 (Hashtbl.find_opt t.occ (Ir.Vreg.id r))

let max_clique_lower_bound t = t.pressure

let pp ppf t =
  Format.fprintf ppf "@[<v>interference (%d nodes):@," (Hashtbl.length t.adj);
  List.iter
    (fun r ->
      Format.fprintf ppf "  %s:" (Ir.Vreg.to_string r);
      List.iter (fun m -> Format.fprintf ppf " %s" (Ir.Vreg.to_string m)) (neighbors t r);
      Format.fprintf ppf "@,")
    (registers t);
  Format.fprintf ppf "@]"
