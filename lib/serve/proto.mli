(** The wire protocol: newline-delimited JSON, one frame per line.

    Requests are objects with an ["op"] discriminator ([compile], [ping],
    [stats], [metrics], [flight], [shutdown]); replies carry a ["status"]
    discriminator ([ok], [error], [timeout], [overload], [bad_frame],
    [pong], [stats], [metrics], [flight], [bye]).
    Compile outcomes ride in the same serialization {!Core.Batch.codec}
    uses for the result cache, so a service reply and a cached batch
    outcome are the same JSON — one codec, one set of round-trip tests.

    Every compile reply carries full provenance: the ladder rung that
    produced the code, the rendered attempt trace of every rung that
    failed first, cache status, and queue/compile/total latency. The
    daemon never answers a compile request with anything but a [Result]
    frame, an [Overload] frame, or a [Bad_frame] frame — protocol
    errors are structured, not dropped connections. *)

val protocol : string
(** ["rbp-serve/1"], echoed in [pong] replies. *)

val code_bad_frame : string
(** ["SRV001"] — unparseable or oversized frame. *)

val code_bad_machine : string
(** ["SRV002"] — machine description rejected. *)

val code_quarantined : string
(** ["SRV003"] — poison request quarantined. *)

val code_shutting_down : string
(** ["SRV004"] — request refused during drain. *)

type compile = {
  id : string;           (** client-chosen correlation id, echoed in the reply *)
  ir : string;           (** textual IR (see {!Ir.Parse}) *)
  clusters : int;
  model : Mach.Machine.copy_model;
  deadline_ms : float option;  (** per-request wall-clock budget *)
  no_cache : bool;             (** bypass the result cache both ways *)
  fault : string option;
      (** opaque poison marker ({!Robust.Inject.service_fault_name});
          honored only when the daemon runs with faults enabled *)
  trace_id : string option;
      (** client-supplied trace correlator; the daemon echoes it (when
          {!Obs.Trace_id.is_valid}) or substitutes a generated one *)
  trace : bool;
      (** ask for the request's span tree in the reply, truncated at
          the daemon's span cap *)
}

type request =
  | Compile of compile
  | Ping
  | Stats
  | Metrics
  | Flight of { id : string option; anomalies : bool }
      (** dump the flight recorder: everything, one trace id, or the
          anomaly ring only *)
  | Shutdown

type cache_status = Hit | Miss | Bypass

val cache_status_name : cache_status -> string
val cache_status_of_name : string -> cache_status option

type timing = { queue_ms : float; compile_ms : float; total_ms : float }

val zero_timing : timing

type result_reply = {
  id : string;
  trace_id : string option;       (** the request's trace identity, always
                                      present on daemon-built replies *)
  outcome : Core.Batch.outcome;   (** metrics on success, stage error otherwise *)
  rung : string option;           (** ladder rung that produced the code *)
  pipelined : bool;               (** false for flat (non-pipelined) code *)
  flat_cycles : int option;       (** schedule length when not pipelined *)
  cache : cache_status;
  spills : int;
  attempts : string list;         (** rendered attempt trace, oldest first *)
  timing : timing;
  trace : Obs.Json.t option;
      (** the {!Obs.Export.trace_json} span tree, present only when the
          request asked for it — absent, the frame is byte-identical to
          the pre-tracing encoding *)
}

type reply =
  | Result of result_reply
  | Overload of { id : string; depth : int; retry_after_ms : float }
  | Bad_frame of { detail : string }
  | Pong
  | Stats_reply of (string * int) list
  | Metrics_reply of Obs.Json.t
      (** the [rbp-metrics/1] document {!Stats.metrics_json} builds,
          carried opaquely so the codec needs no metrics schema *)
  | Flight_reply of Obs.Json.t
      (** the [rbp-flight/1] document {!Flight.to_json} builds, carried
          opaquely like the metrics document *)
  | Bye

val status_of_reply : reply -> string
(** The ["status"] value the encoding carries; [Result] replies are
    ["ok"], ["timeout"] (code {!Robust.Driver.deadline_code}) or
    ["error"]. *)

val model_name : Mach.Machine.copy_model -> string
val model_of_name : string -> Mach.Machine.copy_model option

val request_to_json : request -> Obs.Json.t
val request_to_string : request -> string
val request_of_string : string -> (request, string) result

val reply_to_json : reply -> Obs.Json.t
val reply_to_string : reply -> string
val reply_of_string : string -> (reply, string) result

(** {2 Structured-failure constructors} *)

val queue_timeout_error : id:string -> Verify.Stage_error.t
(** [PIPE008] — the request's deadline fired before a worker picked it
    up. *)

val quarantine_error : id:string -> crashes:int -> Verify.Stage_error.t
(** [SRV003]. *)

val shutdown_error : id:string -> Verify.Stage_error.t
(** [SRV004]. *)

val error_reply :
  ?cache:cache_status ->
  ?timing:timing ->
  ?trace_id:string ->
  id:string ->
  Verify.Stage_error.t ->
  reply
(** A [Result] reply wrapping a structured failure; the attempt trace is
    rendered from the error's own attempts. *)
