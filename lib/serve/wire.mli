(** Socket plumbing shared by the daemon and its clients: addresses,
    line-framed reads with idle budgets, and full writes. *)

type addr = Unix_path of string | Tcp of string * int

val addr_to_string : addr -> string

val addr_of_string : string -> (addr, string) result
(** Accepts [unix:PATH], [tcp:HOST:PORT], a bare [HOST:PORT], or a bare
    filesystem path (anything containing [/], or with no [:]). An empty
    tcp host means 127.0.0.1. *)

val sockaddr_of : addr -> Unix.sockaddr
(** May raise ([Not_found], resolution failures) — callers wrap. *)

val domain_of : addr -> Unix.socket_domain

type reader

val reader : Unix.file_descr -> reader

val read_line :
  ?slice_s:float ->
  ?idle_timeout_s:float ->
  ?max_frame:int ->
  ?should_stop:(unit -> bool) ->
  reader ->
  [ `Line of string | `Eof | `Idle | `Too_long | `Stopped | `Error of string ]
(** Read one newline-terminated frame (CR stripped). The wait happens in
    [slice_s] select slices; between slices [should_stop] is consulted
    (so a SIGTERM unblocks promptly). The [idle_timeout_s] budget is
    total wait per frame and is deliberately not reset by progress, so
    a slow-loris client dribbling one byte per slice still runs out of
    budget. [`Too_long] means the buffered frame exceeded [max_frame]
    with no newline. *)

val write_all : Unix.file_descr -> string -> (unit, string) result
val write_line : Unix.file_descr -> string -> (unit, string) result
