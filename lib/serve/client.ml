type t = { fd : Unix.file_descr; rd : Wire.reader }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let connect ?(retry_for = 0.0) addr =
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec go () =
    let attempt () =
      let fd = Unix.socket (Wire.domain_of addr) Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Wire.sockaddr_of addr) with
      | () -> Ok { fd; rd = Wire.reader fd }
      | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error e
    in
    match attempt () with
    | Ok t -> Ok t
    | Error e ->
        if Unix.gettimeofday () < deadline then begin
          Unix.sleepf 0.05;
          go ()
        end
        else
          Error
            (Printf.sprintf "cannot connect to %s: %s" (Wire.addr_to_string addr)
               (match e with
               | Unix.Unix_error (err, _, _) -> Unix.error_message err
               | e -> Printexc.to_string e))
  in
  (* Resolution errors (bad host) also fall into the retry loop, which
     is fine: they fail fast once the budget runs out. *)
  try go ()
  with e ->
    Error
      (Printf.sprintf "cannot resolve %s: %s" (Wire.addr_to_string addr)
         (Printexc.to_string e))

let send_line t line = Wire.write_line t.fd line

let send_slow t ?(chunk = 7) ?(delay_s = 0.002) line =
  let s = line ^ "\n" in
  let n = String.length s in
  let rec go off =
    if off >= n then Ok ()
    else
      match Wire.write_all t.fd (String.sub s off (min chunk (n - off))) with
      | Error _ as e -> e
      | Ok () ->
          Unix.sleepf delay_s;
          go (off + chunk)
  in
  go 0

let recv_line ?(timeout_s = 60.0) t =
  match Wire.read_line ~slice_s:0.1 ~idle_timeout_s:timeout_s t.rd with
  | `Line l -> Ok l
  | `Eof -> Error "connection closed"
  | `Idle -> Error "timed out waiting for a reply"
  | `Too_long -> Error "oversized reply"
  | `Stopped -> Error "interrupted"
  | `Error e -> Error e

let recv_reply ?timeout_s t =
  match recv_line ?timeout_s t with
  | Error _ as e -> e
  | Ok line -> Proto.reply_of_string line

let request ?timeout_s t req =
  match send_line t (Proto.request_to_string req) with
  | Error _ as e -> e
  | Ok () -> recv_reply ?timeout_s t
