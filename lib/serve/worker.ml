exception Crash of string
(* The simulated worker death: raised past every per-job handler so the
   domain genuinely terminates, exactly like a segfaulting native
   compiler pass would. Only armed when the daemon runs with faults
   enabled. *)

type job = {
  id : string;
  trace_id : string;
  want_trace : bool;
  qkey : string;
  loop : Ir.Loop.t;
  machine : Mach.Machine.t;
  key : string option;
  token : Engine.Cancel.t;
  submitted : float;
  fault : string option;
  attempt : int;
  deliver : Proto.reply -> unit;
}

type slot = {
  mutable domain : unit Domain.t option;
  current : job option Atomic.t;
  dead : bool Atomic.t;
}

type t = {
  queue : job Admission.t;
  stats : Stats.t;
  flight : Flight.t;
  cache : Engine.Cache.t option;
  clock : unit -> float;
  faults_enabled : bool;
  max_retries : int;
  slots : slot array;
  qlock : Mutex.t;
  quarantine : (string, int) Hashtbl.t;
  stopping : bool Atomic.t;
  mutable supervisor : Thread.t option;
}

(* ------------------------------------------------------------------ *)
(* Metrics over ladder results                                         *)

let metrics_of_result (r : Robust.Driver.result) : Core.Metrics.loop_metrics =
  let fi = float_of_int in
  let name = Ir.Loop.name r.Robust.Driver.loop in
  let n_ops = Ir.Loop.size r.Robust.Driver.loop in
  let n_copies = r.Robust.Driver.n_copies in
  match r.Robust.Driver.code with
  | Robust.Driver.Kernel { kernel; ii; ideal_ii } ->
      let count op =
        match r.Robust.Driver.machine.Mach.Machine.copy_model with
        | Mach.Machine.Embedded -> true
        | Mach.Machine.Copy_unit -> not (Ir.Op.is_copy op)
      in
      {
        Core.Metrics.name;
        ideal_ii;
        clustered_ii = ii;
        degradation = 100.0 *. fi ii /. fi ideal_ii;
        ipc_ideal = fi n_ops /. fi ideal_ii;
        ipc_clustered = Sched.Kernel.ipc ~count kernel;
        n_copies;
        n_ops;
      }
  | Robust.Driver.Flat sched ->
      (* Surrendered code has no pipelined II to degrade against; report
         the flat schedule's own throughput and a neutral degradation so
         aggregate means stay defined. [flat_cycles] in the reply is the
         honest signal that this loop was not pipelined. *)
      let len = max 1 (Sched.Schedule.length sched) in
      let ipc = Sched.Schedule.ipc sched in
      {
        Core.Metrics.name;
        ideal_ii = len;
        clustered_ii = len;
        degradation = 100.0;
        ipc_ideal = ipc;
        ipc_clustered = ipc;
        n_copies;
        n_ops;
      }

(* ------------------------------------------------------------------ *)
(* Cache entries: the reply-shaped payload around the batch codec      *)

let encode_entry ~metrics ~rung ~pipelined ~flat_cycles ~spills =
  Obs.Json.Obj
    (List.concat
       [
         [
           ("outcome", Core.Batch.codec.Engine.Run.encode (Ok metrics));
           ("rung", Obs.Json.Str rung);
           ("pipelined", Obs.Json.Bool pipelined);
         ];
         (match flat_cycles with
         | None -> []
         | Some n -> [ ("flat_cycles", Obs.Json.Num (float_of_int n)) ]);
         [ ("spills", Obs.Json.Num (float_of_int spills)) ];
       ])

let decode_entry j =
  let ( let* ) = Option.bind in
  let* outcome = Option.bind (Obs.Json.member "outcome" j) Core.Batch.codec.Engine.Run.decode in
  let* metrics = match outcome with Ok m -> Some m | Error _ -> None in
  let* rung = Option.bind (Obs.Json.member "rung" j) Obs.Json.to_str in
  let pipelined =
    match Obs.Json.member "pipelined" j with Some (Obs.Json.Bool b) -> b | _ -> true
  in
  let flat_cycles = Option.bind (Obs.Json.member "flat_cycles" j) Obs.Json.to_int in
  let spills =
    Option.value ~default:0 (Option.bind (Obs.Json.member "spills" j) Obs.Json.to_int)
  in
  Some (metrics, rung, pipelined, flat_cycles, spills)

(* ------------------------------------------------------------------ *)
(* One job                                                             *)

(* Deliver a reply and retain its flight-recorder entry — one choke
   point so every worker-side answer is recorded exactly once. The span
   tree rides in the reply only when the client asked; the recorder
   keeps a (truncated) copy either way. *)
let deliver_result t (job : job) ?trace_tree (r : Proto.reply) =
  match r with
  | Proto.Result rr ->
      let rr = { rr with Proto.trace_id = Some job.trace_id } in
      job.deliver
        (Proto.Result
           { rr with Proto.trace = (if job.want_trace then trace_tree else None) });
      Flight.record t.flight (Flight.of_result ?trace:trace_tree ~ts:(t.clock ()) rr)
  | other -> job.deliver other

let compile_job t (job : job) =
  let started = t.clock () in
  let queue_ms = 1000.0 *. (started -. job.submitted) in
  let timing compile_ms =
    { Proto.queue_ms; compile_ms; total_ms = 1000.0 *. (t.clock () -. job.submitted) }
  in
  if Engine.Cancel.cancelled job.token then
    (* Expired while queued: answer without spending a single pipeline
       stage on it — the deadline storm defense. *)
    deliver_result t job
      (Proto.error_reply ~cache:Proto.Bypass ~timing:(timing 0.0) ~id:job.id
         (Proto.queue_timeout_error ~id:job.id))
  else begin
    (if t.faults_enabled
       && job.fault = Some (Robust.Inject.service_fault_name Robust.Inject.Crash_worker)
     then raise (Crash job.id));
    (* A private trace on the service clock: counter sink for the stats
       table, span source for the flight recorder and traced replies.
       Spans never reach an untraced reply, so the default wire format
       is unchanged. *)
    let tr = Obs.Trace.make ~clock:(fun () -> t.clock ()) () in
    let trace_tree () =
      Obs.Export.trace_json ~span_cap:(Flight.span_cap t.flight) tr
    in
    let cached =
      match (t.cache, job.key) with
      | Some c, Some key -> (
          match Engine.Cache.find ~obs:tr c ~key with
          | None -> None
          | Some j -> (
              match decode_entry j with
              | Some e -> Some e
              | None ->
                  Obs.Trace.incr (Some tr) Obs.Counter.Engine_cache_corrupt 1;
                  None))
      | _ -> None
    in
    let miss_status = if job.key = None then Proto.Bypass else Proto.Miss in
    (match cached with
    | Some (metrics, rung, pipelined, flat_cycles, spills) ->
        deliver_result t job ~trace_tree:(trace_tree ())
          (Proto.Result
             {
               id = job.id;
               trace_id = Some job.trace_id;
               outcome = Ok metrics;
               rung = Some rung;
               pipelined;
               flat_cycles;
               cache = Proto.Hit;
               spills;
               attempts = [];
               timing = timing 0.0;
               trace = None;
             })
    | None -> (
        let t0 = t.clock () in
        let cancel = Engine.Cancel.guard job.token in
        match Robust.Driver.run ~obs:tr ~cancel ~machine:job.machine job.loop with
        | Ok r ->
            let metrics = metrics_of_result r in
            let rung = Robust.Driver.rung_name r.Robust.Driver.rung in
            let pipelined, flat_cycles =
              match r.Robust.Driver.code with
              | Robust.Driver.Kernel _ -> (true, None)
              | Robust.Driver.Flat s -> (false, Some (Sched.Schedule.length s))
            in
            let spills = r.Robust.Driver.spill_count in
            (match (t.cache, job.key) with
            | Some c, Some key ->
                Engine.Cache.store c ~key
                  (encode_entry ~metrics ~rung ~pipelined ~flat_cycles ~spills)
            | _ -> ());
            deliver_result t job ~trace_tree:(trace_tree ())
              (Proto.Result
                 {
                   id = job.id;
                   trace_id = Some job.trace_id;
                   outcome = Ok metrics;
                   rung = Some rung;
                   pipelined;
                   flat_cycles;
                   cache = miss_status;
                   spills;
                   attempts =
                     List.map Verify.Stage_error.attempt_to_string
                       r.Robust.Driver.attempts;
                   timing = timing (1000.0 *. (t.clock () -. t0));
                   trace = None;
                 })
        | Error e ->
            let e = { e with Verify.Stage_error.subject = job.id } in
            deliver_result t job ~trace_tree:(trace_tree ())
              (Proto.error_reply ~cache:miss_status
                 ~timing:(timing (1000.0 *. (t.clock () -. t0)))
                 ~id:job.id e)));
    Stats.absorb t.stats tr
  end

let run_job t job =
  try compile_job t job with
  | Crash _ as e -> raise e
  | e ->
      (* Per-job crash isolation: an unexpected exception in one request
         becomes that request's structured failure, never the domain's. *)
      deliver_result t job
        (Proto.error_reply ~id:job.id
           (Verify.Stage_error.make ~code:"PIPE001"
              ~stage:Verify.Stage_error.Verification ~subject:job.id
              (Printf.sprintf "worker exception: %s" (Printexc.to_string e))))

(* ------------------------------------------------------------------ *)
(* The pool and its supervisor                                         *)

let rec worker_loop t slot =
  match Admission.pop t.queue with
  | None -> ()
  | Some job ->
      Atomic.set slot.current (Some job);
      run_job t job;
      Atomic.set slot.current None;
      worker_loop t slot

let spawn t slot =
  slot.domain <-
    Some
      (Domain.spawn (fun () ->
           try worker_loop t slot with _ -> Atomic.set slot.dead true))

let quarantined t qkey =
  Mutex.lock t.qlock;
  let r = Hashtbl.find_opt t.quarantine qkey in
  Mutex.unlock t.qlock;
  r

let handle_dead t slot =
  (match slot.domain with Some d -> Domain.join d | None -> ());
  slot.domain <- None;
  Atomic.set slot.dead false;
  Stats.bump t.stats Obs.Counter.Serve_worker_restarts 1;
  (match Atomic.exchange slot.current None with
  | None -> ()
  | Some job ->
      let crashes = job.attempt + 1 in
      if crashes > t.max_retries then begin
        Mutex.lock t.qlock;
        Hashtbl.replace t.quarantine job.qkey crashes;
        Mutex.unlock t.qlock;
        Stats.bump t.stats Obs.Counter.Serve_quarantined 1;
        let total_ms = 1000.0 *. (t.clock () -. job.submitted) in
        deliver_result t job
          (Proto.error_reply
             ~timing:{ Proto.zero_timing with Proto.total_ms }
             ~id:job.id
             (Proto.quarantine_error ~id:job.id ~crashes))
      end
      else if not (Admission.push_force t.queue { job with attempt = crashes }) then
        (* Queue already closed: the retry cannot run, but the request
           still gets an answer. *)
        deliver_result t job
          (Proto.error_reply ~id:job.id (Proto.shutdown_error ~id:job.id)));
  if not (Atomic.get t.stopping) then spawn t slot

let rec supervise t =
  Array.iter (fun slot -> if Atomic.get slot.dead then handle_dead t slot) t.slots;
  if not (Atomic.get t.stopping) then begin
    Thread.delay 0.002;
    supervise t
  end

let create ~queue ~stats ~flight ~cache ~clock ~faults_enabled ~max_retries ~workers
    () =
  let t =
    {
      queue;
      stats;
      flight;
      cache;
      clock;
      faults_enabled;
      max_retries = max 0 max_retries;
      slots =
        Array.init (max 1 workers) (fun _ ->
            { domain = None; current = Atomic.make None; dead = Atomic.make false });
      qlock = Mutex.create ();
      quarantine = Hashtbl.create 8;
      stopping = Atomic.make false;
      supervisor = None;
    }
  in
  Array.iter (fun slot -> spawn t slot) t.slots;
  t.supervisor <- Some (Thread.create supervise t);
  t

let idle t =
  Admission.depth t.queue = 0
  && Array.for_all
       (fun s -> Option.is_none (Atomic.get s.current) && not (Atomic.get s.dead))
       t.slots

let stop t =
  (* Drain, don't abort: close the door, let the workers finish the
     admitted backlog (the supervisor keeps restarting crashed domains
     throughout), then retire the pool. *)
  Admission.close t.queue;
  let rec wait () =
    if not (idle t) then begin
      Thread.delay 0.005;
      wait ()
    end
  in
  wait ();
  Atomic.set t.stopping true;
  (match t.supervisor with Some th -> Thread.join th | None -> ());
  t.supervisor <- None;
  Array.iter
    (fun slot ->
      match slot.domain with
      | Some d ->
          Domain.join d;
          slot.domain <- None
      | None -> ())
    t.slots
