(** Bounded admission queue with explicit backpressure.

    The daemon's connection threads push compile jobs, worker domains
    pop them. The queue never blocks a producer: once [limit] jobs are
    waiting, {!try_push} refuses with a deterministic [retry_after]
    quote and the caller answers the client with an [overload] frame —
    load is shed at the door, in the 429 style, instead of building an
    unbounded backlog whose tail would blow every deadline anyway.

    Safe across domains and threads (one mutex, one condition). Closing
    the queue is the drain signal: producers are refused with [`Closed],
    consumers keep draining what was admitted and then receive [None] —
    so a SIGTERM shutdown answers everything it accepted. *)

type 'a t

val create : limit:int -> unit -> 'a t
(** [limit <= 0] means admit nothing — every push sheds (useful for
    overload tests). *)

val try_push : 'a t -> 'a -> [ `Admitted of int | `Shed of float | `Closed ]
(** [`Admitted depth] with the post-push depth; [`Shed retry_after_ms]
    when the queue is full — the quote grows with how far past the
    limit the backlog is. Never blocks. *)

val push_force : 'a t -> 'a -> bool
(** Bypass the limit (the supervisor requeueing a crashed worker's job
    must not be shed — the request was already admitted once). [false]
    only when the queue is closed. *)

val pop : 'a t -> 'a option
(** Block until an item is available; [None] once the queue is closed
    {e and} drained. *)

val close : 'a t -> unit
val closed : 'a t -> bool
val depth : 'a t -> int

val retry_after_base_ms : float
(** The base [retry_after] quote (25 ms). *)
