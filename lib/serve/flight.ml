type entry = {
  trace_id : string;
  id : string;
  status : string;
  anomaly : string option;
  rung : string option;
  cache : string;
  queue_ms : float;
  compile_ms : float;
  total_ms : float;
  attempts : string list;
  trace : Obs.Json.t option;
  ts : float;
}

(* A fixed ring: [next] is the slot the next entry lands in, so once
   full the oldest entry is exactly the one overwritten. *)
type ring = { slots : entry option array; mutable next : int; mutable count : int }

let ring_make capacity = { slots = Array.make (max 1 capacity) None; next = 0; count = 0 }

let ring_push r e =
  r.slots.(r.next) <- Some e;
  r.next <- (r.next + 1) mod Array.length r.slots;
  r.count <- min (r.count + 1) (Array.length r.slots)

(* Oldest first. *)
let ring_list r =
  let n = Array.length r.slots in
  let start = (r.next - r.count + n * 2) mod n in
  List.init r.count (fun i -> r.slots.((start + i) mod n))
  |> List.filter_map Fun.id

type t = {
  lock : Mutex.t;
  requests : ring;
  anomalies : ring;
  span_cap : int;
  clock : unit -> float;
}

let default_capacity = 256
let default_anomaly_capacity = 64
let default_span_cap = 64

let make ?(capacity = default_capacity) ?(anomaly_capacity = default_anomaly_capacity)
    ?(span_cap = default_span_cap) ~clock () =
  {
    lock = Mutex.create ();
    requests = ring_make capacity;
    anomalies = ring_make anomaly_capacity;
    span_cap = max 1 span_cap;
    clock;
  }

let span_cap t = t.span_cap
let clock t = t.clock

let record t e =
  Mutex.lock t.lock;
  if e.status <> "overload" then ring_push t.requests e;
  (match e.anomaly with Some _ -> ring_push t.anomalies e | None -> ());
  Mutex.unlock t.lock

let requests t =
  Mutex.lock t.lock;
  let l = ring_list t.requests in
  Mutex.unlock t.lock;
  l

let anomalies t =
  Mutex.lock t.lock;
  let l = ring_list t.anomalies in
  Mutex.unlock t.lock;
  l

let find t trace_id =
  Mutex.lock t.lock;
  let pick l =
    List.fold_left
      (fun acc e -> if e.trace_id = trace_id then Some e else acc)
      None l
  in
  let r =
    match pick (ring_list t.anomalies) with
    | Some _ as hit -> hit
    | None -> pick (ring_list t.requests)
  in
  Mutex.unlock t.lock;
  r

(* ------------------------------------------------------------------ *)
(* Entry constructors shared by the worker and the server              *)

let anomaly_of_result (r : Proto.result_reply) =
  match Proto.status_of_reply (Proto.Result r) with
  | "timeout" -> Some "timeout"
  | "error" -> (
      match r.Proto.outcome with
      | Error e when e.Verify.Stage_error.code = Proto.code_quarantined ->
          Some "quarantine"
      | _ -> None)
  | _ -> None

let of_result ?trace ~ts (r : Proto.result_reply) =
  {
    trace_id = Option.value ~default:Obs.Trace_id.placeholder r.Proto.trace_id;
    id = r.Proto.id;
    status = Proto.status_of_reply (Proto.Result r);
    anomaly = anomaly_of_result r;
    rung = r.Proto.rung;
    cache = Proto.cache_status_name r.Proto.cache;
    queue_ms = r.Proto.timing.Proto.queue_ms;
    compile_ms = r.Proto.timing.Proto.compile_ms;
    total_ms = r.Proto.timing.Proto.total_ms;
    attempts = r.Proto.attempts;
    trace;
    ts;
  }

let shed ~trace_id ~id ~ts =
  {
    trace_id;
    id;
    status = "overload";
    anomaly = Some "overload";
    rung = None;
    cache = "bypass";
    queue_ms = 0.0;
    compile_ms = 0.0;
    total_ms = 0.0;
    attempts = [];
    trace = None;
    ts;
  }

(* ------------------------------------------------------------------ *)
(* The rbp-flight/1 document                                           *)

let schema = "rbp-flight/1"

let str s = Obs.Json.Str s
let num x = Obs.Json.Num x

let entry_to_json e =
  Obs.Json.Obj
    (List.concat
       [
         [
           ("trace_id", str e.trace_id);
           ("id", str e.id);
           ("status", str e.status);
         ];
         (match e.anomaly with None -> [] | Some a -> [ ("anomaly", str a) ]);
         (match e.rung with None -> [] | Some r -> [ ("rung", str r) ]);
         [
           ("cache", str e.cache);
           ("queue_ms", num e.queue_ms);
           ("compile_ms", num e.compile_ms);
           ("total_ms", num e.total_ms);
           ("attempts", Obs.Json.List (List.map str e.attempts));
         ];
         (match e.trace with None -> [] | Some t -> [ ("trace", t) ]);
         [ ("ts", num e.ts) ];
       ])

let entry_of_json j =
  let field name conv = Option.bind (Obs.Json.member name j) conv in
  match (field "trace_id" Obs.Json.to_str, field "id" Obs.Json.to_str,
         field "status" Obs.Json.to_str)
  with
  | Some trace_id, Some id, Some status ->
      Ok
        {
          trace_id;
          id;
          status;
          anomaly = field "anomaly" Obs.Json.to_str;
          rung = field "rung" Obs.Json.to_str;
          cache = Option.value ~default:"bypass" (field "cache" Obs.Json.to_str);
          queue_ms = Option.value ~default:0.0 (field "queue_ms" Obs.Json.to_num);
          compile_ms = Option.value ~default:0.0 (field "compile_ms" Obs.Json.to_num);
          total_ms = Option.value ~default:0.0 (field "total_ms" Obs.Json.to_num);
          attempts =
            (match field "attempts" Obs.Json.to_list with
            | Some l -> List.filter_map Obs.Json.to_str l
            | None -> []);
          trace = Obs.Json.member "trace" j;
          ts = Option.value ~default:0.0 (field "ts" Obs.Json.to_num);
        }
  | _ -> Error "flight entry lacks trace_id/id/status"

let to_json ?id ?(anomalies_only = false) t =
  Mutex.lock t.lock;
  let reqs = ring_list t.requests and anoms = ring_list t.anomalies in
  let cap = Array.length t.requests.slots
  and acap = Array.length t.anomalies.slots in
  Mutex.unlock t.lock;
  let keep e = match id with None -> true | Some id -> e.trace_id = id in
  let reqs = if anomalies_only then [] else List.filter keep reqs in
  let anoms = List.filter keep anoms in
  Obs.Json.Obj
    [
      ("schema", str schema);
      ("capacity", num (float_of_int cap));
      ("anomaly_capacity", num (float_of_int acap));
      ("span_cap", num (float_of_int t.span_cap));
      ("requests", Obs.Json.List (List.map entry_to_json reqs));
      ("anomalies", Obs.Json.List (List.map entry_to_json anoms));
    ]

let entries_of_json j =
  let field name conv = Option.bind (Obs.Json.member name j) conv in
  match field "schema" Obs.Json.to_str with
  | Some s when s <> schema ->
      Error (Printf.sprintf "unknown flight schema %S (want %S)" s schema)
  | None -> Error "flight document lacks a \"schema\" field"
  | Some _ ->
      let arr name =
        match field name Obs.Json.to_list with
        | None -> Error (Printf.sprintf "flight document lacks a %S list" name)
        | Some l ->
            List.fold_left
              (fun acc e ->
                Result.bind acc (fun acc ->
                    Result.map (fun e -> e :: acc) (entry_of_json e)))
              (Ok []) l
            |> Result.map List.rev
      in
      Result.bind (arr "requests") (fun reqs ->
          Result.map (fun anoms -> (reqs, anoms)) (arr "anomalies"))

(* ------------------------------------------------------------------ *)
(* The rbp flight rendering                                            *)

let count_spans j =
  match Obs.Export.trace_spans_of_json j with
  | Error _ -> 0
  | Ok roots ->
      let rec n (s : Obs.Trace.span) =
        1 + List.fold_left (fun a c -> a + n c) 0 s.Obs.Trace.children
      in
      List.fold_left (fun a s -> a + n s) 0 roots

let render_entries b title entries =
  Buffer.add_string b (Printf.sprintf "%s (%d)\n" title (List.length entries));
  if entries = [] then Buffer.add_string b "  (none)\n"
  else begin
    Buffer.add_string b
      (Printf.sprintf "  %-18s %-12s %-16s %-8s %9s %9s %9s\n" "trace_id" "id" "status"
         "cache" "queue_ms" "comp_ms" "total_ms");
    List.iter
      (fun e ->
        Buffer.add_string b
          (Printf.sprintf "  %-18s %-12s %-16s %-8s %9.3f %9.3f %9.3f%s\n" e.trace_id
             e.id
             (match e.anomaly with Some a when a <> e.status -> e.status ^ "/" ^ a | _ -> e.status)
             e.cache e.queue_ms e.compile_ms e.total_ms
             (match e.rung with Some r -> "  via " ^ r | None -> ""));
        List.iter
          (fun a -> Buffer.add_string b (Printf.sprintf "      attempt: %s\n" a))
          e.attempts;
        match e.trace with
        | Some t -> Buffer.add_string b (Printf.sprintf "      trace: %d span(s)\n" (count_spans t))
        | None -> ())
      entries
  end

let render j =
  match entries_of_json j with
  | Error _ as e -> e
  | Ok (reqs, anoms) ->
      let b = Buffer.create 1024 in
      render_entries b "requests" reqs;
      Buffer.add_char b '\n';
      render_entries b "anomalies" anoms;
      Ok (Buffer.contents b)
