(** Blocking protocol client — used by [rbp bombard], [rbp call] and the
    end-to-end tests. One connection, stop-and-wait. *)

type t

val connect : ?retry_for:float -> Wire.addr -> (t, string) result
(** [retry_for] keeps retrying a refused connection for that many
    seconds (50 ms apart) — how callers wait for a daemon that is still
    binding its socket. *)

val close : t -> unit

val send_line : t -> string -> (unit, string) result

val send_slow : t -> ?chunk:int -> ?delay_s:float -> string -> (unit, string) result
(** The slow-loris injector: the frame plus newline, [chunk] bytes at a
    time, [delay_s] apart. *)

val recv_line : ?timeout_s:float -> t -> (string, string) result
val recv_reply : ?timeout_s:float -> t -> (Proto.reply, string) result

val request : ?timeout_s:float -> t -> Proto.request -> (Proto.reply, string) result
(** Send one frame, wait for one reply. *)
