(** Client-side view of the daemon's [metrics] reply.

    {!Stats.metrics_json} builds the [rbp-metrics/1] document on the
    daemon; this module is everything a consumer needs: a typed parse,
    the [rbp top] dashboard rendering, and the Prometheus text
    exposition [rbp top --prom] serves to external scrapers. Keeping it
    in [lib/serve] (not [bin/]) makes every rendering unit-testable and
    byte-pinnable without a socket. *)

type series = {
  count : int;
  sum : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

type window = {
  requests_per_s : float;
  overloads_per_s : float;
  results_per_s : float;
  cache_hit_ratio : float;  (** fraction in [0,1]; 0 when no results *)
}

type t = {
  uptime_s : float;
  counters : (string * int) list;
  queue : series;    (** queue latency, ms *)
  compile : series;  (** compile latency, ms *)
  total : series;    (** total (queue + compile + delivery) latency, ms *)
  rungs : (string * series) list;  (** compile ms per ladder rung *)
  windows : (string * window) list;  (** by lookback label, e.g. "10s" *)
  gc : (string * float) list;
      (** the daemon's memory telemetry ([live_words], [heap_words],
          collection counts…); empty for documents predating the block *)
}

val of_json : Obs.Json.t -> (t, string) result
(** Rejects documents whose ["schema"] is not {!Stats.schema}. *)

val of_string : string -> (t, string) result

val render : t -> string
(** The [rbp top] dashboard: latency and per-rung quantile tables,
    rolling rates per lookback, the gc pane, then the counter list. *)

val prometheus : t -> string
(** Prometheus text exposition: counters as [rbp_<name>_total] counter
    families, the three latency series and the per-rung series as
    [summary] families (quantile 0.5/0.9/0.99 + [_sum]/[_count]),
    rolling rates as gauges labelled by [window], gc telemetry as
    [rbp_serve_gc_*] gauges, and [rbp_serve_uptime_seconds]. Families
    are sorted by metric name and
    labels are emitted in a fixed order, so the exposition is stable for
    a given document. *)
