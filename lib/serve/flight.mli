(** The flight recorder: post-hoc forensics for individual requests.

    Aggregate metrics ({!Stats}) say how the fleet is doing; the flight
    recorder answers "what happened to {e that} request" after the
    fact. Two fixed-size rings, one mutex:

    - the {e request ring} keeps the last [capacity] completed compile
      requests — trace id, outcome, rung, latencies, attempt trace and
      a span tree truncated at the daemon's span cap;
    - the {e anomaly ring} keeps timeouts, quarantines and overload
      sheds {e separately}, so a burst of healthy traffic cannot evict
      the one entry a post-mortem needs.

    Every completed anomaly is recorded in both rings (it is a
    completed request {e and} an anomaly); an overload shed — never
    admitted, so never completed — lands only in the anomaly ring.
    The [flight] wire op and [rbp flight] serve {!to_json} documents;
    the SIGTERM drain writes a final dump to [--flight-out]. *)

type entry = {
  trace_id : string;
  id : string;              (** client correlation id *)
  status : string;          (** ok | error | timeout | overload *)
  anomaly : string option;  (** [Some "timeout"|"quarantine"|"overload"] *)
  rung : string option;
  cache : string;
  queue_ms : float;
  compile_ms : float;
  total_ms : float;
  attempts : string list;   (** rendered rung attempt trace *)
  trace : Obs.Json.t option;  (** truncated {!Obs.Export.trace_json} tree *)
  ts : float;               (** clock reading at completion *)
}

type t

val default_capacity : int
(** 256 completed requests. *)

val default_anomaly_capacity : int
(** 64 anomalies. *)

val default_span_cap : int
(** 64 spans per retained tree. *)

val make :
  ?capacity:int ->
  ?anomaly_capacity:int ->
  ?span_cap:int ->
  clock:(unit -> float) ->
  unit ->
  t

val span_cap : t -> int
(** The bound recorders must apply when building [entry.trace]. *)

val clock : t -> unit -> float

val record : t -> entry -> unit
(** Push into the request ring (unless the entry is a pure shed, status
    ["overload"]) and, when [anomaly] is set, into the anomaly ring. *)

val requests : t -> entry list
(** Request-ring contents, oldest first. *)

val anomalies : t -> entry list
(** Anomaly-ring contents, oldest first. *)

val find : t -> string -> entry option
(** Latest entry (either ring) whose [trace_id] matches. *)

val of_result : ?trace:Obs.Json.t -> ts:float -> Proto.result_reply -> entry
(** The entry for one completed [Result] reply; the anomaly tag is
    derived from the reply ([timeout] status → ["timeout"], a
    {!Proto.code_quarantined} error → ["quarantine"]). [trace] is the
    retained span tree — the recorder keeps it even when the reply
    itself did not carry one. *)

val shed : trace_id:string -> id:string -> ts:float -> entry
(** The anomaly entry for an admission-control shed (never admitted,
    so it appears in the anomaly ring only). *)

val schema : string
(** ["rbp-flight/1"]. *)

val to_json : ?id:string -> ?anomalies_only:bool -> t -> Obs.Json.t
(** The dump the [flight] op serves: [schema], ring capacities, then
    [requests] and [anomalies] arrays (oldest first). [?id] filters
    both arrays to one trace id; [anomalies_only] empties the request
    array. Key order is fixed, so a fake clock pins the document. *)

val entry_of_json : Obs.Json.t -> (entry, string) result

val entries_of_json : Obs.Json.t -> (entry list * entry list, string) result
(** [(requests, anomalies)] from a {!to_json} document; rejects foreign
    schemas. *)

val render : Obs.Json.t -> (string, string) result
(** The [rbp flight] human rendering of a {!to_json} document. *)
