(** Thread-safe counters, latency histograms and rolling windows.

    {!Obs.Trace.t} is deliberately single-threaded (one context per
    compilation), so the daemon cannot bump a shared trace from its
    connection threads and worker domains. This is the concurrent
    complement: one mutex guarding a table of {!Obs.Counter.t} cells,
    {!Obs.Histogram.t}s for queue/compile/total latency (plus one per
    ladder rung), and {!Obs.Window.t} rings for rolling request,
    overload and result rates. Counters remain observable through the
    wire protocol's [stats] op exactly as before; the distributions ride
    only in the additive [metrics] op, so a daemon that is never asked
    for metrics emits byte-identical frames. *)

type t

val schema : string
(** ["rbp-metrics/1"], the [metrics_json] envelope marker. *)

val make : ?clock:(unit -> float) -> ?gc_stat:(unit -> Gc.stat) -> unit -> t
(** The clock feeds the rolling windows and the uptime field; it
    defaults to a frozen zero so pure counter users need no time
    source. [gc_stat] (default {!Gc.quick_stat}) feeds the [gc] block
    of {!metrics_json}; tests inject a frozen one to keep the document
    byte-stable. *)

val bump : t -> Obs.Counter.t -> int -> unit
val get : t -> Obs.Counter.t -> int

val absorb : t -> Obs.Trace.t -> unit
(** Fold a finished per-request trace's counter totals into the table
    (labels are collapsed — the service reports totals). *)

val snapshot : t -> (string * int) list
(** Every touched cell as [(name, value)], sorted by name. *)

(** {2 Distributions}

    Called from the server's reply paths so every admitted request —
    success, structured failure, deadline timeout, quarantine — lands in
    the histograms, and overloads land in their window. *)

val note_admitted : t -> unit
val note_shed : t -> unit

val note_result :
  t ->
  rung:string option ->
  cache_hit:bool ->
  queue_ms:float ->
  compile_ms:float ->
  total_ms:float ->
  unit
(** Record one [Result] reply's timing. The per-rung compile histogram
    is fed only when [rung] is present and the result was not served
    from cache. *)

val metrics_json : t -> Obs.Json.t
(** The full [rbp-metrics/1] document: [schema], [uptime_s], the counter
    snapshot, [latency.{queue_ms,compile_ms,total_ms}] and per-rung
    summaries ([count]/[sum]/[p50]/[p90]/[p99]/[max] each), and
    [windows.{10s,60s}] rolling rates ([requests_per_s],
    [overloads_per_s], [results_per_s], [cache_hit_ratio]), and a [gc]
    block ([live_words], [heap_words], [minor_collections],
    [major_collections], [compactions], [minor_words]). Key order is
    fixed and rungs are sorted, so a fake clock plus a frozen [gc_stat]
    makes the whole document byte-stable. *)
