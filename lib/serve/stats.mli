(** Thread-safe counter cells for the service.

    {!Obs.Trace.t} is deliberately single-threaded (one context per
    compilation), so the daemon cannot bump a shared trace from its
    connection threads and worker domains. This is the concurrent
    complement: a mutex-guarded table of {!Obs.Counter.t} cells that any
    thread or domain may bump, and into which each request's private
    trace is folded when the request completes — the same counter
    catalog, observable live through the wire protocol's [stats] op. *)

type t

val make : unit -> t
val bump : t -> Obs.Counter.t -> int -> unit
val get : t -> Obs.Counter.t -> int

val absorb : t -> Obs.Trace.t -> unit
(** Fold a finished per-request trace's counter totals into the table
    (labels are collapsed — the service reports totals). *)

val snapshot : t -> (string * int) list
(** Every touched cell as [(name, value)], sorted by name. *)
