(** The daemon: accept loop, per-connection threads, graceful drain.

    Architecture (DESIGN.md §13): the accept loop hands each connection
    to a thread that parses newline-delimited JSON frames; compile
    requests pass admission control (bounded queue, [overload] replies
    with a [retry_after] quote once the backlog hits the limit) and are
    compiled on worker domains with per-request deadlines, cache
    answers, crash supervision and quarantine (see {!Worker}). SIGTERM
    and SIGINT trigger a graceful drain: stop accepting, answer every
    admitted request, join the pool, exit 0.

    Exit-code contract: 0 — clean shutdown after a drain (signal or a
    [shutdown] frame when enabled); 1 — the listen socket could not be
    opened. The daemon does not exit on any request content: malformed
    frames, poison requests and worker crashes are answered and
    survived. *)

type config = {
  addr : Wire.addr;
  workers : int;                      (** worker domains (min 1) *)
  queue_limit : int;                  (** admission bound; 0 sheds everything *)
  default_deadline_ms : float option; (** applied when a request names none *)
  max_retries : int;                  (** worker crashes before quarantine *)
  cache : Engine.Cache.t option;
  idle_timeout_s : float;             (** per-frame total read budget *)
  max_frame : int;                    (** bytes; larger frames are [bad_frame] *)
  faults_enabled : bool;              (** honor poison markers (tests only) *)
  allow_shutdown : bool;              (** honor the [shutdown] op *)
  clock : unit -> float;
  logger : Obs.Log.t;                 (** lifecycle at [Info], per-request at [Debug] *)
  trace_seed : int;                 (** seeds the server-side trace-id stream *)
  flight_capacity : int;              (** flight-recorder request ring *)
  flight_anomaly_capacity : int;      (** flight-recorder anomaly ring *)
  span_cap : int;                     (** spans retained / returned per trace *)
  flight_out : string option;         (** final flight dump path, written on drain *)
}

val config :
  ?workers:int ->
  ?queue_limit:int ->
  ?default_deadline_ms:float ->
  ?max_retries:int ->
  ?cache:Engine.Cache.t ->
  ?idle_timeout_s:float ->
  ?max_frame:int ->
  ?faults_enabled:bool ->
  ?allow_shutdown:bool ->
  ?clock:(unit -> float) ->
  ?logger:Obs.Log.t ->
  ?trace_seed:int ->
  ?flight_capacity:int ->
  ?flight_anomaly_capacity:int ->
  ?span_cap:int ->
  ?flight_out:string ->
  Wire.addr ->
  config
(** Defaults: 2 workers, queue limit 64, no default deadline, 2 retries
    before quarantine, no cache, 30 s frame budget, 1 MiB frames,
    faults off, shutdown op off, wall clock; a [Text]-format [Info]
    logger on stderr driven by [clock]; a trace seed drawn from the
    clock; {!Flight.default_capacity} / {!Flight.default_anomaly_capacity}
    / {!Flight.default_span_cap} rings; no flight dump. *)

val run : config -> int
(** Blocks until shutdown; returns the process exit code. *)

val job_key : machine:Mach.Machine.t -> Ir.Loop.t -> string
(** The content-addressed cache key serve uses for a request — exposed
    so tests can pre-seed or corrupt exactly the entry a request will
    probe. *)
