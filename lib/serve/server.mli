(** The daemon: accept loop, per-connection threads, graceful drain.

    Architecture (DESIGN.md §13): the accept loop hands each connection
    to a thread that parses newline-delimited JSON frames; compile
    requests pass admission control (bounded queue, [overload] replies
    with a [retry_after] quote once the backlog hits the limit) and are
    compiled on worker domains with per-request deadlines, cache
    answers, crash supervision and quarantine (see {!Worker}). SIGTERM
    and SIGINT trigger a graceful drain: stop accepting, answer every
    admitted request, join the pool, exit 0.

    Exit-code contract: 0 — clean shutdown after a drain (signal or a
    [shutdown] frame when enabled); 1 — the listen socket could not be
    opened. The daemon does not exit on any request content: malformed
    frames, poison requests and worker crashes are answered and
    survived. *)

type config = {
  addr : Wire.addr;
  workers : int;                      (** worker domains (min 1) *)
  queue_limit : int;                  (** admission bound; 0 sheds everything *)
  default_deadline_ms : float option; (** applied when a request names none *)
  max_retries : int;                  (** worker crashes before quarantine *)
  cache : Engine.Cache.t option;
  idle_timeout_s : float;             (** per-frame total read budget *)
  max_frame : int;                    (** bytes; larger frames are [bad_frame] *)
  faults_enabled : bool;              (** honor poison markers (tests only) *)
  allow_shutdown : bool;              (** honor the [shutdown] op *)
  clock : unit -> float;
  log : string -> unit;
}

val config :
  ?workers:int ->
  ?queue_limit:int ->
  ?default_deadline_ms:float ->
  ?max_retries:int ->
  ?cache:Engine.Cache.t ->
  ?idle_timeout_s:float ->
  ?max_frame:int ->
  ?faults_enabled:bool ->
  ?allow_shutdown:bool ->
  ?clock:(unit -> float) ->
  ?log:(string -> unit) ->
  Wire.addr ->
  config
(** Defaults: 2 workers, queue limit 64, no default deadline, 2 retries
    before quarantine, no cache, 30 s frame budget, 1 MiB frames,
    faults off, shutdown op off, wall clock, logging to stderr. *)

val run : config -> int
(** Blocks until shutdown; returns the process exit code. *)

val job_key : machine:Mach.Machine.t -> Ir.Loop.t -> string
(** The content-addressed cache key serve uses for a request — exposed
    so tests can pre-seed or corrupt exactly the entry a request will
    probe. *)
