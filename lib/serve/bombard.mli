(** The bombardment harness: replay the workload suite against a live
    daemon from concurrent clients while injecting service-level faults,
    then score the run.

    Each suite loop gets its own splitmix64 stream derived only from
    (seed, loop index) — never from the client thread that happened to
    draw it — so fault placement is reproducible at any concurrency.
    A loop's turn is: zero or more fault preludes (garbage frame,
    slow-loris dribble, mid-request disconnect, near-zero deadline,
    worker-crash poison), then always one {e clean} scored request,
    retried with jittered exponential backoff whenever the daemon sheds
    it with an [overload] quote. The scored request is what the
    rbp-bench/1 report aggregates, so a fully-fault-injected run still
    produces the deterministic paper metrics the perf gate compares. *)

type config = {
  addr : Wire.addr;
  clients : int;           (** concurrent client threads *)
  loops : int;             (** 0 = the whole 211-loop suite *)
  seed : int;
  clusters : int;
  model : Mach.Machine.copy_model;
  deadline_ms : float option;  (** deadline on scored requests *)
  faults : Robust.Inject.service_fault list;
  fault_rate : float;      (** per-(loop, fault) firing probability *)
  max_retries : int;       (** scored-request overload/reconnect budget *)
  timeout_s : float;       (** client-side reply timeout *)
  check : bool;            (** recompute locally and compare metrics *)
  trace_sample : int;
      (** request the span tree on every Nth scored compile (0 = never);
          under [check] the tree must parse, echo the client's trace id,
          and agree with the reply's rung *)
  log : string -> unit;
}

val config :
  ?clients:int ->
  ?loops:int ->
  ?seed:int ->
  ?clusters:int ->
  ?model:Mach.Machine.copy_model ->
  ?deadline_ms:float ->
  ?faults:Robust.Inject.service_fault list ->
  ?fault_rate:float ->
  ?max_retries:int ->
  ?timeout_s:float ->
  ?check:bool ->
  ?trace_sample:int ->
  ?log:(string -> unit) ->
  Wire.addr ->
  config
(** Defaults: 4 clients, whole suite, seed 1995, 4 clusters, embedded
    copies, no deadline, no faults, rate 1.0, 8 retries, 120 s timeout,
    no checking, no trace sampling, silent. *)

type latency_series = {
  count : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

type report = {
  seed : int;
  total : int;
  clusters : int;
  model : Mach.Machine.copy_model;
  ok : int;
  errors : int;
  timeouts : int;
  unanswered : int;        (** must be 0: every request gets an answer *)
  protocol_errors : string list;  (** must be empty *)
  mismatches : string list;       (** serve-vs-local metric disagreements *)
  sheds : int;
  retries : int;
  cache_hits : int;
  traced : int;            (** scored requests that asked for a span tree *)
  faults_fired : (string * int) list;
  p50_ms : float;  (** clean ok round-trips only (no sheds absorbed) … *)
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  degraded : latency_series;
      (** … while error/timeout outcomes and shed-then-retried requests
          (whose latency includes the backoff) are scored here, so the
          headline quantiles can't under-state the tail by mixing — or
          hiding — degraded round-trips *)
  wall_s : float;
  throughput_rps : float;
  metrics : Core.Metrics.loop_metrics list;
  server_counters : (string * int) list;  (** the daemon's own stats op *)
}

val run : config -> report

val exit_code : report -> int
(** [0] iff every request was answered, no protocol errors, no
    serve-vs-local mismatches. *)

val to_json : report -> Obs.Json.t
(** An rbp-bench/1 document ({!Core.Perfdiff.parse} accepts it): the
    scored requests' paper metrics as one config labelled
    ["serve <C>x<W> <model>"], with service latency/shed/retry telemetry
    riding in an extra ["serve"] object the differ ignores. *)

val render : report -> string
(** Human-readable summary ending in a PASS/FAIL verdict line. *)
