let protocol = "rbp-serve/1"

let code_bad_frame = "SRV001"
let code_bad_machine = "SRV002"
let code_quarantined = "SRV003"
let code_shutting_down = "SRV004"

type compile = {
  id : string;
  ir : string;
  clusters : int;
  model : Mach.Machine.copy_model;
  deadline_ms : float option;
  no_cache : bool;
  fault : string option;
  trace_id : string option;
  trace : bool;
}

type request =
  | Compile of compile
  | Ping
  | Stats
  | Metrics
  | Flight of { id : string option; anomalies : bool }
  | Shutdown

type cache_status = Hit | Miss | Bypass

let cache_status_name = function Hit -> "hit" | Miss -> "miss" | Bypass -> "bypass"

let cache_status_of_name = function
  | "hit" -> Some Hit
  | "miss" -> Some Miss
  | "bypass" -> Some Bypass
  | _ -> None

type timing = { queue_ms : float; compile_ms : float; total_ms : float }

let zero_timing = { queue_ms = 0.0; compile_ms = 0.0; total_ms = 0.0 }

type result_reply = {
  id : string;
  trace_id : string option;
  outcome : Core.Batch.outcome;
  rung : string option;
  pipelined : bool;
  flat_cycles : int option;
  cache : cache_status;
  spills : int;
  attempts : string list;
  timing : timing;
  trace : Obs.Json.t option;
}

type reply =
  | Result of result_reply
  | Overload of { id : string; depth : int; retry_after_ms : float }
  | Bad_frame of { detail : string }
  | Pong
  | Stats_reply of (string * int) list
  | Metrics_reply of Obs.Json.t
  | Flight_reply of Obs.Json.t
  | Bye

(* ------------------------------------------------------------------ *)
(* JSON helpers                                                        *)

let str s = Obs.Json.Str s
let num x = Obs.Json.Num x
let int_num n = Obs.Json.Num (float_of_int n)
let field name conv j = Option.bind (Obs.Json.member name j) conv
let ( let* ) = Option.bind

let model_name = function
  | Mach.Machine.Embedded -> "embedded"
  | Mach.Machine.Copy_unit -> "copy-unit"

let model_of_name = function
  | "embedded" -> Some Mach.Machine.Embedded
  | "copy-unit" -> Some Mach.Machine.Copy_unit
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

let request_to_json = function
  | Ping -> Obs.Json.Obj [ ("op", str "ping") ]
  | Stats -> Obs.Json.Obj [ ("op", str "stats") ]
  | Metrics -> Obs.Json.Obj [ ("op", str "metrics") ]
  | Flight { id; anomalies } ->
      Obs.Json.Obj
        (List.concat
           [
             [ ("op", str "flight") ];
             (match id with None -> [] | Some id -> [ ("id", str id) ]);
             (if anomalies then [ ("anomalies", Obs.Json.Bool true) ] else []);
           ])
  | Shutdown -> Obs.Json.Obj [ ("op", str "shutdown") ]
  | Compile c ->
      Obs.Json.Obj
        (List.concat
           [
             [ ("op", str "compile"); ("id", str c.id); ("ir", str c.ir) ];
             [ ("clusters", int_num c.clusters); ("model", str (model_name c.model)) ];
             (match c.deadline_ms with
             | None -> []
             | Some ms -> [ ("deadline_ms", num ms) ]);
             (if c.no_cache then [ ("no_cache", Obs.Json.Bool true) ] else []);
             (match c.fault with None -> [] | Some f -> [ ("fault", str f) ]);
             (match c.trace_id with None -> [] | Some t -> [ ("trace_id", str t) ]);
             (if c.trace then [ ("trace", Obs.Json.Bool true) ] else []);
           ])

let request_of_json j =
  match field "op" Obs.Json.to_str j with
  | None -> Error "missing \"op\" field"
  | Some "ping" -> Ok Ping
  | Some "stats" -> Ok Stats
  | Some "metrics" -> Ok Metrics
  | Some "flight" ->
      let id = field "id" Obs.Json.to_str j in
      let anomalies =
        match Obs.Json.member "anomalies" j with
        | Some (Obs.Json.Bool b) -> b
        | _ -> false
      in
      Ok (Flight { id; anomalies })
  | Some "shutdown" -> Ok Shutdown
  | Some "compile" -> (
      match field "ir" Obs.Json.to_str j with
      | None -> Error "compile request lacks an \"ir\" field"
      | Some ir -> (
          let id = Option.value ~default:"" (field "id" Obs.Json.to_str j) in
          let clusters = Option.value ~default:4 (field "clusters" Obs.Json.to_int j) in
          let deadline_ms = field "deadline_ms" Obs.Json.to_num j in
          let no_cache =
            match Obs.Json.member "no_cache" j with
            | Some (Obs.Json.Bool b) -> b
            | _ -> false
          in
          let fault = field "fault" Obs.Json.to_str j in
          let trace_id = field "trace_id" Obs.Json.to_str j in
          let trace =
            match Obs.Json.member "trace" j with
            | Some (Obs.Json.Bool b) -> b
            | _ -> false
          in
          match Option.value ~default:"embedded" (field "model" Obs.Json.to_str j) with
          | m when model_of_name m <> None ->
              let model = Option.get (model_of_name m) in
              Ok
                (Compile
                   { id; ir; clusters; model; deadline_ms; no_cache; fault; trace_id; trace })
          | m -> Error (Printf.sprintf "unknown copy model %S" m)))
  | Some op -> Error (Printf.sprintf "unknown op %S" op)

let request_of_string line =
  match Obs.Json.of_string line with
  | Error e -> Error ("frame is not JSON: " ^ e)
  | Ok j -> request_of_json j

let request_to_string r = Obs.Json.to_string (request_to_json r)

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)

let status_of_result (r : result_reply) =
  match r.outcome with
  | Ok _ -> "ok"
  | Error e when e.Verify.Stage_error.code = Robust.Driver.deadline_code -> "timeout"
  | Error _ -> "error"

let status_of_reply = function
  | Result r -> status_of_result r
  | Overload _ -> "overload"
  | Bad_frame _ -> "bad_frame"
  | Pong -> "pong"
  | Stats_reply _ -> "stats"
  | Metrics_reply _ -> "metrics"
  | Flight_reply _ -> "flight"
  | Bye -> "bye"

let reply_to_json reply =
  match reply with
  | Pong -> Obs.Json.Obj [ ("status", str "pong"); ("protocol", str protocol) ]
  | Bye -> Obs.Json.Obj [ ("status", str "bye") ]
  | Bad_frame { detail } ->
      Obs.Json.Obj
        [ ("status", str "bad_frame"); ("code", str code_bad_frame); ("detail", str detail) ]
  | Stats_reply cells ->
      Obs.Json.Obj
        [
          ("status", str "stats");
          ("counters", Obs.Json.Obj (List.map (fun (n, v) -> (n, int_num v)) cells));
        ]
  | Metrics_reply m -> Obs.Json.Obj [ ("status", str "metrics"); ("metrics", m) ]
  | Flight_reply f -> Obs.Json.Obj [ ("status", str "flight"); ("flight", f) ]
  | Overload { id; depth; retry_after_ms } ->
      Obs.Json.Obj
        [
          ("status", str "overload");
          ("id", str id);
          ("depth", int_num depth);
          ("retry_after_ms", num retry_after_ms);
        ]
  | Result r ->
      Obs.Json.Obj
        (List.concat
           [
             [ ("status", str (status_of_result r)); ("id", str r.id) ];
             (match r.trace_id with None -> [] | Some t -> [ ("trace_id", str t) ]);
             [
               ("result", Core.Batch.codec.Engine.Run.encode r.outcome);
               ("cache", str (cache_status_name r.cache));
             ];
             (match r.rung with None -> [] | Some rung -> [ ("rung", str rung) ]);
             [ ("pipelined", Obs.Json.Bool r.pipelined) ];
             (match r.flat_cycles with
             | None -> []
             | Some n -> [ ("flat_cycles", int_num n) ]);
             [
               ("spills", int_num r.spills);
               ("attempts", Obs.Json.List (List.map str r.attempts));
               ("queue_ms", num r.timing.queue_ms);
               ("compile_ms", num r.timing.compile_ms);
               ("total_ms", num r.timing.total_ms);
             ];
             (match r.trace with None -> [] | Some t -> [ ("trace", t) ]);
           ])

let reply_of_json j =
  match field "status" Obs.Json.to_str j with
  | None -> Error "reply lacks a \"status\" field"
  | Some "pong" -> Ok Pong
  | Some "bye" -> Ok Bye
  | Some "bad_frame" ->
      Ok
        (Bad_frame
           { detail = Option.value ~default:"" (field "detail" Obs.Json.to_str j) })
  | Some "stats" -> (
      match Obs.Json.member "counters" j with
      | Some (Obs.Json.Obj cells) ->
          let cells =
            List.filter_map
              (fun (n, v) -> Option.map (fun v -> (n, v)) (Obs.Json.to_int v))
              cells
          in
          Ok (Stats_reply cells)
      | _ -> Error "stats reply lacks a \"counters\" object")
  | Some "metrics" -> (
      match Obs.Json.member "metrics" j with
      | Some m -> Ok (Metrics_reply m)
      | None -> Error "metrics reply lacks a \"metrics\" object")
  | Some "flight" -> (
      match Obs.Json.member "flight" j with
      | Some f -> Ok (Flight_reply f)
      | None -> Error "flight reply lacks a \"flight\" object")
  | Some "overload" -> (
      match
        ( field "id" Obs.Json.to_str j,
          field "depth" Obs.Json.to_int j,
          field "retry_after_ms" Obs.Json.to_num j )
      with
      | Some id, Some depth, Some retry_after_ms ->
          Ok (Overload { id; depth; retry_after_ms })
      | _ -> Error "malformed overload reply")
  | Some ("ok" | "error" | "timeout") -> (
      let decoded =
        let* id = field "id" Obs.Json.to_str j in
        let trace_id = field "trace_id" Obs.Json.to_str j in
        let* result = Obs.Json.member "result" j in
        let* outcome = Core.Batch.codec.Engine.Run.decode result in
        let* cache =
          Option.bind (field "cache" Obs.Json.to_str j) cache_status_of_name
        in
        let rung = field "rung" Obs.Json.to_str j in
        let pipelined =
          match Obs.Json.member "pipelined" j with
          | Some (Obs.Json.Bool b) -> b
          | _ -> false
        in
        let flat_cycles = field "flat_cycles" Obs.Json.to_int j in
        let spills = Option.value ~default:0 (field "spills" Obs.Json.to_int j) in
        let attempts =
          match field "attempts" Obs.Json.to_list j with
          | Some l -> List.filter_map Obs.Json.to_str l
          | None -> []
        in
        let timing =
          {
            queue_ms = Option.value ~default:0.0 (field "queue_ms" Obs.Json.to_num j);
            compile_ms = Option.value ~default:0.0 (field "compile_ms" Obs.Json.to_num j);
            total_ms = Option.value ~default:0.0 (field "total_ms" Obs.Json.to_num j);
          }
        in
        let trace = Obs.Json.member "trace" j in
        Some
          (Result
             {
               id; trace_id; outcome; rung; pipelined; flat_cycles; cache; spills;
               attempts; timing; trace;
             })
      in
      match decoded with
      | Some r -> Ok r
      | None -> Error "malformed result reply")
  | Some s -> Error (Printf.sprintf "unknown reply status %S" s)

let reply_of_string line =
  match Obs.Json.of_string line with
  | Error e -> Error ("reply is not JSON: " ^ e)
  | Ok j -> reply_of_json j

let reply_to_string r = Obs.Json.to_string (reply_to_json r)

(* ------------------------------------------------------------------ *)
(* Structured-failure constructors the daemon shares                   *)

let failure ?attempts ~code ~stage ~id detail =
  Verify.Stage_error.make ?attempts ~code ~stage ~subject:id detail

let queue_timeout_error ~id =
  failure ~code:Robust.Driver.deadline_code ~stage:Verify.Stage_error.Ideal_schedule ~id
    "deadline exceeded while queued; compilation never started"

let quarantine_error ~id ~crashes =
  failure ~code:code_quarantined ~stage:Verify.Stage_error.Verification ~id
    (Printf.sprintf "request quarantined after crashing its worker %d time(s)" crashes)

let shutdown_error ~id =
  failure ~code:code_shutting_down ~stage:Verify.Stage_error.Ir_input ~id
    "service is shutting down"

let error_reply ?(cache = Bypass) ?(timing = zero_timing) ?trace_id ~id err =
  Result
    {
      id;
      trace_id;
      outcome = Error err;
      rung = None;
      pipelined = false;
      flat_cycles = None;
      cache;
      spills = 0;
      attempts = List.map Verify.Stage_error.attempt_to_string err.Verify.Stage_error.attempts;
      timing;
      trace = None;
    }
