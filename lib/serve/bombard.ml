type config = {
  addr : Wire.addr;
  clients : int;
  loops : int;
  seed : int;
  clusters : int;
  model : Mach.Machine.copy_model;
  deadline_ms : float option;
  faults : Robust.Inject.service_fault list;
  fault_rate : float;
  max_retries : int;
  timeout_s : float;
  check : bool;
  trace_sample : int;
  log : string -> unit;
}

let config ?(clients = 4) ?(loops = 0) ?(seed = 1995) ?(clusters = 4)
    ?(model = Mach.Machine.Embedded) ?deadline_ms ?(faults = []) ?(fault_rate = 1.0)
    ?(max_retries = 8) ?(timeout_s = 120.0) ?(check = false) ?(trace_sample = 0)
    ?(log = ignore) addr =
  {
    addr; clients; loops; seed; clusters; model; deadline_ms; faults; fault_rate;
    max_retries; timeout_s; check; trace_sample; log;
  }

type probe = {
  name : string;
  status : string;  (* ok | error | timeout | unanswered *)
  latency_ms : float;
  retries : int;          (* overload backoffs + reconnect resends *)
  sheds : int;            (* overload replies absorbed *)
  faults_fired : string list;
  cache : string;
  rung : string option;
  metrics : Core.Metrics.loop_metrics option;
  protocol_errors : string list;
  mismatch : string option;
  traced : bool;
}

type latency_series = {
  count : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

type report = {
  seed : int;
  total : int;
  clusters : int;
  model : Mach.Machine.copy_model;
  ok : int;
  errors : int;
  timeouts : int;
  unanswered : int;
  protocol_errors : string list;
  mismatches : string list;
  sheds : int;
  retries : int;
  cache_hits : int;
  traced : int;
  faults_fired : (string * int) list;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  degraded : latency_series;
  wall_s : float;
  throughput_rps : float;
  metrics : Core.Metrics.loop_metrics list;
  server_counters : (string * int) list;
}

(* ------------------------------------------------------------------ *)
(* One client thread                                                   *)

(* A client owns one connection at a time and reconnects after the
   disconnect/slow-loris faults sever it. *)
type client_state = { cfg : config; mutable conn : Client.t option }

let drop_conn st =
  match st.conn with
  | None -> ()
  | Some c ->
      Client.close c;
      st.conn <- None

let get_conn st =
  match st.conn with
  | Some c -> Ok c
  | None -> (
      match Client.connect ~retry_for:5.0 st.cfg.addr with
      | Ok c ->
          st.conn <- Some c;
          Ok c
      | Error _ as e -> e)

(* Send one frame and read one reply, reconnecting (and resending) once
   on a connection-level failure. *)
let roundtrip st line =
  let once () =
    match get_conn st with
    | Error _ as e -> e
    | Ok c -> (
        match Client.send_line c line with
        | Error _ as e ->
            drop_conn st;
            e
        | Ok () -> (
            match Client.recv_reply ~timeout_s:st.cfg.timeout_s c with
            | Error _ as e ->
                drop_conn st;
                e
            | Ok _ as ok -> ok))
  in
  match once () with Ok r -> Ok r | Error _ -> once ()

let compile_request st ~id ?deadline_ms ?fault ?trace_id ?(trace = false) loop =
  Proto.Compile
    {
      Proto.id;
      ir = Ir.Parse.loop_to_string loop;
      clusters = st.cfg.clusters;
      model = st.cfg.model;
      deadline_ms;
      no_cache = false;
      fault;
      trace_id;
      trace;
    }

(* ------------------------------------------------------------------ *)
(* Fault preludes — each loop may be softened up before the clean
   request that the report scores. *)

let prelude st prng ~index loop fault errors =
  let id fmt = Printf.sprintf "%s-%d" fmt index in
  let expect ~ok ~what reply =
    let s = Proto.status_of_reply reply in
    if not (List.mem s ok) then
      errors :=
        Printf.sprintf "%s: unexpected %S reply (%s)" what s (Proto.reply_to_string reply)
        :: !errors
  in
  match (fault : Robust.Inject.service_fault) with
  | Robust.Inject.Garbage_frame -> (
      match roundtrip st "}{ this is not a frame" with
      | Error e -> errors := Printf.sprintf "garbage-frame: %s" e :: !errors
      | Ok reply -> expect ~ok:[ "bad_frame" ] ~what:"garbage-frame" reply)
  | Robust.Inject.Slow_loris -> (
      let req = compile_request st ~id:(id "loris") loop in
      let line = Proto.request_to_string req in
      match get_conn st with
      | Error e -> errors := Printf.sprintf "slow-loris: %s" e :: !errors
      | Ok c -> (
          let chunk = 16 + Util.Prng.int prng 48 in
          match Client.send_slow c ~chunk ~delay_s:0.001 line with
          | Error _ -> drop_conn st (* server gave up on us: by design *)
          | Ok () -> (
              match Client.recv_reply ~timeout_s:st.cfg.timeout_s c with
              | Error _ -> drop_conn st
              | Ok reply ->
                  expect
                    ~ok:[ "ok"; "error"; "timeout"; "overload"; "bad_frame" ]
                    ~what:"slow-loris" reply)))
  | Robust.Inject.Disconnect -> (
      match get_conn st with
      | Error e -> errors := Printf.sprintf "disconnect: %s" e :: !errors
      | Ok c ->
          (* Fire a request and hang up before the answer: the worker's
             write must not hurt the daemon. *)
          ignore
            (Client.send_line c
               (Proto.request_to_string (compile_request st ~id:(id "gone") loop)));
          drop_conn st)
  | Robust.Inject.Deadline_storm -> (
      let req = compile_request st ~id:(id "storm") ~deadline_ms:0.01 loop in
      match roundtrip st (Proto.request_to_string req) with
      | Error e -> errors := Printf.sprintf "deadline-storm: %s" e :: !errors
      | Ok reply ->
          (* Usually a timeout; a cache hit can still answer "ok". *)
          expect ~ok:[ "timeout"; "ok"; "overload" ] ~what:"deadline-storm" reply)
  | Robust.Inject.Crash_worker -> (
      let fault = Robust.Inject.service_fault_name Robust.Inject.Crash_worker in
      let req = compile_request st ~id:(id "poison") ~fault loop in
      match roundtrip st (Proto.request_to_string req) with
      | Error e -> errors := Printf.sprintf "crash-worker: %s" e :: !errors
      | Ok reply ->
          (* The supervisor retries then quarantines: a structured error. *)
          expect ~ok:[ "error"; "overload" ] ~what:"crash-worker" reply)

(* ------------------------------------------------------------------ *)
(* The scored request, with jittered exponential backoff on overload    *)

let local_check st loop (m : Core.Metrics.loop_metrics) rung =
  match Robust.Driver.run ~machine:(Mach.Machine.paper_clustered ~clusters:st.cfg.clusters ~copy_model:st.cfg.model) loop with
  | Error e ->
      Some
        (Printf.sprintf "%s: served ok but local ladder failed (%s)"
           (Ir.Loop.name loop) e.Verify.Stage_error.code)
  | Ok r ->
      let local = Worker.metrics_of_result r in
      let diff what a b =
        if a = b then None else Some (Printf.sprintf "%s %d vs local %d" what a b)
      in
      let problems =
        List.filter_map Fun.id
          [
            diff "ideal_ii" m.Core.Metrics.ideal_ii local.Core.Metrics.ideal_ii;
            diff "clustered_ii" m.Core.Metrics.clustered_ii local.Core.Metrics.clustered_ii;
            diff "n_copies" m.Core.Metrics.n_copies local.Core.Metrics.n_copies;
            (match rung with
            | Some served when served <> Robust.Driver.rung_name r.Robust.Driver.rung ->
                Some
                  (Printf.sprintf "rung %S vs local %S" served
                     (Robust.Driver.rung_name r.Robust.Driver.rung))
            | _ -> None);
          ]
      in
      if problems = [] then None
      else Some (Printf.sprintf "%s: %s" (Ir.Loop.name loop) (String.concat "; " problems))

(* Validate a traced reply: the client-supplied trace id must be
   echoed, the span tree must parse, and — when the ladder actually ran
   — the last [ladder.rung] span's [rung] attribute must name the same
   rung the reply claims. Cache hits carry no ladder spans; that is not
   a failure. *)
let check_trace ~id ~sent_trace_id (r : Proto.result_reply) errors =
  let fail fmt = Printf.ksprintf (fun m -> errors := Printf.sprintf "%s: %s" id m :: !errors) fmt in
  (match r.Proto.trace_id with
  | Some got when got = sent_trace_id -> ()
  | Some got -> fail "trace id %S echoed as %S" sent_trace_id got
  | None -> fail "traced reply carries no trace_id");
  match r.Proto.trace with
  | None -> fail "traced reply carries no span tree"
  | Some tj -> (
      match Obs.Export.trace_spans_of_json tj with
      | Error e -> fail "span tree does not parse: %s" e
      | Ok roots -> (
          let rec rungs (s : Obs.Trace.span) =
            (if s.Obs.Trace.name = "ladder.rung" then
               List.filter_map
                 (fun (k, v) -> if k = "rung" then Some v else None)
                 s.Obs.Trace.attrs
             else [])
            @ List.concat_map rungs s.Obs.Trace.children
          in
          let seen = List.concat_map rungs roots in
          match (List.rev seen, r.Proto.rung) with
          | last :: _, Some claimed when last <> claimed ->
              fail "trace says rung %S but the reply claims %S" last claimed
          | _ -> ()))

let scored_request st prng ~index loop ~faults_fired ~errors =
  let id = Printf.sprintf "loop-%d" index in
  let want_trace = st.cfg.trace_sample > 0 && index mod st.cfg.trace_sample = 0 in
  let trace_id = Printf.sprintf "bombard-%d-%d" st.cfg.seed index in
  let req =
    compile_request st ~id ?deadline_ms:st.cfg.deadline_ms
      ?trace_id:(if want_trace then Some trace_id else None)
      ~trace:want_trace loop
  in
  let line = Proto.request_to_string req in
  let t0 = Unix.gettimeofday () in
  let retries = ref 0 and sheds = ref 0 in
  let finish status ?(cache = "bypass") ?rung ?metrics ?mismatch () =
    {
      name = Ir.Loop.name loop;
      status;
      latency_ms = 1000.0 *. (Unix.gettimeofday () -. t0);
      retries = !retries;
      sheds = !sheds;
      faults_fired;
      cache;
      rung;
      metrics;
      protocol_errors = List.rev !errors;
      mismatch;
      traced = want_trace;
    }
  in
  let rec attempt n =
    match roundtrip st line with
    | Error e ->
        if n >= st.cfg.max_retries then begin
          errors := Printf.sprintf "%s: %s" id e :: !errors;
          finish "unanswered" ()
        end
        else begin
          incr retries;
          Unix.sleepf 0.05;
          attempt (n + 1)
        end
    | Ok (Proto.Overload { retry_after_ms; _ }) ->
        incr sheds;
        if n >= st.cfg.max_retries then begin
          errors := Printf.sprintf "%s: still shed after %d retries" id n :: !errors;
          finish "unanswered" ()
        end
        else begin
          incr retries;
          let backoff =
            retry_after_ms /. 1000.0
            *. (0.5 +. Util.Prng.float prng 1.0)
            *. (2.0 ** float_of_int (min n 6))
          in
          Unix.sleepf (Float.min backoff 2.0);
          attempt (n + 1)
        end
    | Ok (Proto.Result r) ->
        let status = Proto.status_of_reply (Proto.Result r) in
        let cache = Proto.cache_status_name r.Proto.cache in
        let metrics = match r.Proto.outcome with Ok m -> Some m | Error _ -> None in
        if want_trace && st.cfg.check then
          check_trace ~id ~sent_trace_id:trace_id r errors;
        let mismatch =
          match (st.cfg.check, metrics) with
          | true, Some m -> local_check st loop m r.Proto.rung
          | _ -> None
        in
        finish status ~cache ?rung:r.Proto.rung ?metrics ?mismatch ()
    | Ok reply ->
        errors :=
          Printf.sprintf "%s: unexpected %S reply to a compile frame" id
            (Proto.status_of_reply reply)
          :: !errors;
        finish "unanswered" ()
  in
  attempt 0

let run_loop st ~index loop =
  (* The per-loop stream depends only on (seed, index), never on which
     client thread drew the loop — fault placement is reproducible at
     any concurrency. *)
  let prng = Util.Prng.create (st.cfg.seed lxor ((index + 1) * 0x9e3779b9)) in
  let errors = ref [] in
  let faults_fired =
    List.filter_map
      (fun f ->
        if Util.Prng.chance prng st.cfg.fault_rate then begin
          prelude st prng ~index loop f errors;
          Some (Robust.Inject.service_fault_name f)
        end
        else None)
      st.cfg.faults
  in
  scored_request st prng ~index loop ~faults_fired ~errors

(* ------------------------------------------------------------------ *)
(* The fleet                                                           *)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1 |> max 0))

let fetch_server_counters cfg =
  match Client.connect ~retry_for:1.0 cfg.addr with
  | Error _ -> []
  | Ok c ->
      let r =
        match Client.request ~timeout_s:10.0 c Proto.Stats with
        | Ok (Proto.Stats_reply cells) -> cells
        | _ -> []
      in
      Client.close c;
      r

let run (cfg : config) =
  let suite = Workload.Suite.loops ~seed:cfg.seed () in
  let suite = if cfg.loops > 0 then List.filteri (fun i _ -> i < cfg.loops) suite else suite in
  let loops = Array.of_list suite in
  let total = Array.length loops in
  let results = Array.make total None in
  let clients = max 1 cfg.clients in
  let t0 = Unix.gettimeofday () in
  let worker k () =
    let st = { cfg; conn = None } in
    let i = ref k in
    while !i < total do
      let p = run_loop st ~index:!i loops.(!i) in
      results.(!i) <- Some p;
      cfg.log
        (Printf.sprintf "[%d/%d] %s %s%s (%.1f ms)" (!i + 1) total p.name p.status
           (match p.rung with Some r -> " via " ^ r | None -> "")
           p.latency_ms);
      i := !i + clients
    done;
    drop_conn st
  in
  let threads = List.init clients (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let probes = Array.to_list results |> List.filter_map Fun.id in
  let count f = List.length (List.filter f probes) in
  (* A round-trip is "degraded" when it ended in a structured failure or
     deadline timeout, or absorbed overload sheds (its latency then
     includes the backoff). Scoring the headline quantiles on clean ok
     round-trips only, with the degraded series reported beside them,
     keeps retry backoff from hiding — or inflating — either tail. *)
  let degraded_probe (p : probe) =
    p.status = "error" || p.status = "timeout" || p.sheds > 0
  in
  let series_of f =
    let ls =
      List.filter (fun (p : probe) -> p.status <> "unanswered" && f p) probes
      |> List.map (fun (p : probe) -> p.latency_ms)
      |> Array.of_list
    in
    Array.sort compare ls;
    {
      count = Array.length ls;
      p50_ms = percentile ls 0.50;
      p95_ms = percentile ls 0.95;
      p99_ms = percentile ls 0.99;
      max_ms = (if Array.length ls = 0 then 0.0 else ls.(Array.length ls - 1));
    }
  in
  let ok_series = series_of (fun p -> not (degraded_probe p)) in
  let degraded = series_of degraded_probe in
  let fault_counts =
    List.map
      (fun f ->
        let n = Robust.Inject.service_fault_name f in
        (n, count (fun (p : probe) -> List.mem n p.faults_fired)))
      cfg.faults
  in
  {
    seed = cfg.seed;
    total;
    clusters = cfg.clusters;
    model = cfg.model;
    ok = count (fun (p : probe) -> p.status = "ok");
    errors = count (fun (p : probe) -> p.status = "error");
    timeouts = count (fun (p : probe) -> p.status = "timeout");
    unanswered = count (fun (p : probe) -> p.status = "unanswered");
    protocol_errors = List.concat_map (fun (p : probe) -> p.protocol_errors) probes;
    mismatches = List.filter_map (fun (p : probe) -> p.mismatch) probes;
    sheds = List.fold_left (fun a (p : probe) -> a + p.sheds) 0 probes;
    retries = List.fold_left (fun a (p : probe) -> a + p.retries) 0 probes;
    cache_hits = count (fun (p : probe) -> p.cache = "hit");
    traced = count (fun (p : probe) -> p.traced);
    faults_fired = fault_counts;
    p50_ms = ok_series.p50_ms;
    p95_ms = ok_series.p95_ms;
    p99_ms = ok_series.p99_ms;
    max_ms = ok_series.max_ms;
    degraded;
    wall_s;
    throughput_rps = (if wall_s > 0.0 then float_of_int total /. wall_s else 0.0);
    metrics = List.filter_map (fun (p : probe) -> p.metrics) probes;
    server_counters = fetch_server_counters cfg;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let exit_code r =
  if r.unanswered = 0 && r.protocol_errors = [] && r.mismatches = [] then 0 else 1

let to_json r =
  let str s = Obs.Json.Str s in
  let num x = Obs.Json.Num x in
  let int_num n = Obs.Json.Num (float_of_int n) in
  let m = r.metrics in
  let label =
    Printf.sprintf "serve %dx%d %s" r.clusters
      (match r.clusters with 0 -> 0 | c -> 16 / c)
      (Proto.model_name r.model)
  in
  Obs.Json.Obj
    [
      ("schema", str "rbp-bench/1");
      ("seed", int_num r.seed);
      ("loops", int_num r.total);
      ("ideal_ipc", num (Core.Metrics.mean_ipc_ideal m));
      ( "configs",
        Obs.Json.List
          [
            Obs.Json.Obj
              [
                ("label", str label);
                ("clusters", int_num r.clusters);
                ("copy_model", str (Proto.model_name r.model));
                ("loops_ok", int_num (List.length m));
                ("failures", int_num (r.total - List.length m));
                ("mean_ipc_clustered", num (Core.Metrics.mean_ipc_clustered m));
                ("arith_mean_degradation", num (Core.Metrics.arithmetic_mean_degradation m));
                ("harmonic_mean_degradation", num (Core.Metrics.harmonic_mean_degradation m));
                ("pct_no_degradation", num (Core.Metrics.pct_no_degradation m));
              ];
          ] );
      ("cache_hits", int_num r.cache_hits);
      ("wall_s", num r.wall_s);
      (* Service telemetry: extra fields perfdiff deliberately ignores. *)
      ( "serve",
        Obs.Json.Obj
          [
            ("ok", int_num r.ok);
            ("errors", int_num r.errors);
            ("timeouts", int_num r.timeouts);
            ("unanswered", int_num r.unanswered);
            ("protocol_errors", int_num (List.length r.protocol_errors));
            ("mismatches", int_num (List.length r.mismatches));
            ("sheds", int_num r.sheds);
            ("retries", int_num r.retries);
            ("traced", int_num r.traced);
            ( "cache_hit_rate",
              num
                (if r.total = 0 then 0.0
                 else float_of_int r.cache_hits /. float_of_int r.total) );
            ("p50_ms", num r.p50_ms);
            ("p95_ms", num r.p95_ms);
            ("p99_ms", num r.p99_ms);
            ("max_ms", num r.max_ms);
            ( "degraded",
              Obs.Json.Obj
                [
                  ("count", int_num r.degraded.count);
                  ("p50_ms", num r.degraded.p50_ms);
                  ("p95_ms", num r.degraded.p95_ms);
                  ("p99_ms", num r.degraded.p99_ms);
                  ("max_ms", num r.degraded.max_ms);
                ] );
            ("throughput_rps", num r.throughput_rps);
            ( "faults",
              Obs.Json.Obj (List.map (fun (n, v) -> (n, int_num v)) r.faults_fired) );
            ( "server_counters",
              Obs.Json.Obj (List.map (fun (n, v) -> (n, int_num v)) r.server_counters) );
          ] );
    ]

let render r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "bombardment: %d loops, seed %d, %dx config, %s copies" r.total r.seed r.clusters
    (Proto.model_name r.model);
  line "  answered    ok %d / error %d / timeout %d / unanswered %d" r.ok r.errors
    r.timeouts r.unanswered;
  line "  resilience  sheds %d, retries %d, cache hits %d" r.sheds r.retries r.cache_hits;
  if r.traced > 0 then line "  traced      %d requests carried span trees" r.traced;
  if r.faults_fired <> [] then
    line "  faults      %s"
      (String.concat ", "
         (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) r.faults_fired));
  line "  latency     p50 %.1f ms, p95 %.1f ms, p99 %.1f ms, max %.1f ms" r.p50_ms
    r.p95_ms r.p99_ms r.max_ms;
  if r.degraded.count > 0 then
    line "  degraded    %d req: p50 %.1f ms, p95 %.1f ms, p99 %.1f ms, max %.1f ms"
      r.degraded.count r.degraded.p50_ms r.degraded.p95_ms r.degraded.p99_ms
      r.degraded.max_ms;
  line "  wall        %.2f s (%.1f req/s)" r.wall_s r.throughput_rps;
  (match r.metrics with
  | [] -> ()
  | m ->
      line "  paper       loops_ok %d, mean clustered IPC %.3f, arith degradation %.2f"
        (List.length m)
        (Core.Metrics.mean_ipc_clustered m)
        (Core.Metrics.arithmetic_mean_degradation m));
  List.iter (fun e -> line "  protocol error: %s" e) r.protocol_errors;
  List.iter (fun e -> line "  MISMATCH: %s" e) r.mismatches;
  line "  verdict     %s" (if exit_code r = 0 then "PASS" else "FAIL");
  Buffer.contents b
