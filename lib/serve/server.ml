type config = {
  addr : Wire.addr;
  workers : int;
  queue_limit : int;
  default_deadline_ms : float option;
  max_retries : int;
  cache : Engine.Cache.t option;
  idle_timeout_s : float;
  max_frame : int;
  faults_enabled : bool;
  allow_shutdown : bool;
  clock : unit -> float;
  logger : Obs.Log.t;
  trace_seed : int;
  flight_capacity : int;
  flight_anomaly_capacity : int;
  span_cap : int;
  flight_out : string option;
}

let config ?(workers = 2) ?(queue_limit = 64) ?default_deadline_ms ?(max_retries = 2)
    ?cache ?(idle_timeout_s = 30.0) ?(max_frame = 1 lsl 20) ?(faults_enabled = false)
    ?(allow_shutdown = false) ?(clock = Unix.gettimeofday) ?logger ?trace_seed
    ?(flight_capacity = Flight.default_capacity)
    ?(flight_anomaly_capacity = Flight.default_anomaly_capacity)
    ?(span_cap = Flight.default_span_cap) ?flight_out addr =
  let logger =
    match logger with
    | Some l -> l
    | None -> Obs.Log.make ~clock ~sink:prerr_endline ()
  in
  let trace_seed =
    match trace_seed with
    | Some s -> s
    | None -> int_of_float (clock () *. 1e6)
  in
  {
    addr; workers; queue_limit; default_deadline_ms; max_retries; cache;
    idle_timeout_s; max_frame; faults_enabled; allow_shutdown; clock; logger;
    trace_seed; flight_capacity; flight_anomaly_capacity; span_cap; flight_out;
  }

type t = {
  cfg : config;
  stop : bool Atomic.t;
  stats : Stats.t;
  flight : Flight.t;
  trace_ids : Obs.Trace_id.gen;
  queue : Worker.job Admission.t;
  pool : Worker.t;
  conns : int Atomic.t;
}

let serve_options_salt = "serve/ladder-default"

let job_key ~machine loop =
  Engine.Key.make
    [
      ("loop", Core.Batch.fingerprint_loop loop);
      ("machine", Core.Batch.fingerprint_machine machine);
      ("options", serve_options_salt);
    ]

let quarantine_key ~machine ~fault loop =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            Core.Batch.fingerprint_loop loop;
            Core.Batch.fingerprint_machine machine;
            Option.value ~default:"" fault;
          ]))

(* ------------------------------------------------------------------ *)
(* One connection                                                      *)

let classify srv reply =
  (* Every Result reply — ok, structured error, deadline timeout,
     quarantine — carries timing, so the latency distributions cover
     all admitted requests, not just successes. *)
  (match reply with
  | Proto.Result r ->
      Stats.note_result srv.stats ~rung:r.Proto.rung
        ~cache_hit:(r.Proto.cache = Proto.Hit)
        ~queue_ms:r.Proto.timing.Proto.queue_ms
        ~compile_ms:r.Proto.timing.Proto.compile_ms
        ~total_ms:r.Proto.timing.Proto.total_ms
  | _ -> ());
  match Proto.status_of_reply reply with
  | "ok" ->
      Stats.bump srv.stats Obs.Counter.Serve_completed 1;
      (match reply with
      | Proto.Result { cache = Proto.Hit; _ } ->
          Stats.bump srv.stats Obs.Counter.Serve_cache_hits 1
      | _ -> ())
  | "timeout" -> Stats.bump srv.stats Obs.Counter.Serve_timeouts 1
  | "error" -> Stats.bump srv.stats Obs.Counter.Serve_failed 1
  | _ -> ()

(* One accepted connection. The fd must outlive the reader thread: a
   worker domain delivers compile replies asynchronously, and closing
   the fd while a job is in flight would let the OS reuse the number
   for the next accepted connection — the late reply would then land in
   some other client's stream. So the fd is reference-counted: it
   closes only once the reader is done AND no admitted job still owes
   this connection a reply. Writes stop as soon as the peer is known
   gone (EOF or a write error), so a disconnected client's replies are
   counted as disconnects, never sprayed at a recycled descriptor. *)
type conn = {
  fd : Unix.file_descr;
  lock : Mutex.t;
  mutable pending : int;      (* admitted jobs yet to deliver here *)
  mutable reader_done : bool; (* no further requests will be read *)
  mutable peer_gone : bool;   (* EOF / write failure: stop writing *)
  mutable fd_closed : bool;
}

let conn_make fd =
  {
    fd;
    lock = Mutex.create ();
    pending = 0;
    reader_done = false;
    peer_gone = false;
    fd_closed = false;
  }

(* With [c.lock] held. *)
let conn_close_if_done c =
  if c.reader_done && c.pending = 0 && not c.fd_closed then begin
    c.fd_closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let conn_send srv c reply =
  Mutex.lock c.lock;
  let r =
    if c.peer_gone || c.fd_closed then Error "peer gone"
    else Wire.write_line c.fd (Proto.reply_to_string reply)
  in
  (match r with
  | Ok () -> ()
  | Error _ ->
      c.peer_gone <- true;
      Stats.bump srv.stats Obs.Counter.Serve_disconnects 1);
  Mutex.unlock c.lock

let conn_job_done srv c reply =
  conn_send srv c reply;
  Mutex.lock c.lock;
  c.pending <- c.pending - 1;
  conn_close_if_done c;
  Mutex.unlock c.lock

let conn_reader_done ?(peer_gone = false) c =
  Mutex.lock c.lock;
  c.reader_done <- true;
  if peer_gone then c.peer_gone <- true;
  conn_close_if_done c;
  Mutex.unlock c.lock

let handle_compile srv ~conn ~send (c : Proto.compile) =
  let received = srv.cfg.clock () in
  (* The request's trace identity: the client's correlator when it is
     well-formed, a server-generated one otherwise — either way every
     reply, log line and flight entry about this request carries it. *)
  let trace_id =
    match c.Proto.trace_id with
    | Some t when Obs.Trace_id.is_valid t -> t
    | _ -> Obs.Trace_id.next srv.trace_ids
  in
  Obs.Log.debug srv.cfg.logger ~trace_id
    ~fields:[ ("id", Obs.Json.Str c.Proto.id) ]
    "compile received";
  let deliver reply =
    classify srv reply;
    (match reply with
    | Proto.Result r ->
        Obs.Log.debug srv.cfg.logger ~trace_id
          ~fields:
            [
              ("id", Obs.Json.Str c.Proto.id);
              ("status", Obs.Json.Str (Proto.status_of_reply reply));
              ("total_ms", Obs.Json.Num r.Proto.timing.Proto.total_ms);
            ]
          "compile done"
    | _ -> ());
    conn_job_done srv conn reply
  in
  let answer reply =
    (* Synchronous reply from the connection thread itself: no pending
       slot was taken. *)
    classify srv reply;
    send reply
  in
  let structured_failure err =
    let reply =
      Proto.error_reply
        ~timing:
          {
            Proto.zero_timing with
            Proto.total_ms = 1000.0 *. (srv.cfg.clock () -. received);
          }
        ~trace_id ~id:c.Proto.id err
    in
    (* Synchronous failures never reach a worker, so they are recorded
       here — the flight recorder must cover every answered request. *)
    (match reply with
    | Proto.Result r ->
        Flight.record srv.flight (Flight.of_result ~ts:(srv.cfg.clock ()) r);
        Obs.Log.debug srv.cfg.logger ~trace_id
          ~fields:
            [
              ("id", Obs.Json.Str c.Proto.id);
              ("code", Obs.Json.Str err.Verify.Stage_error.code);
            ]
          "compile rejected"
    | _ -> ());
    answer reply
  in
  match Ir.Parse.loop_of_string c.Proto.ir with
  | Error e ->
      structured_failure
        (Verify.Stage_error.make ~stage:Verify.Stage_error.Ir_input ~subject:c.Proto.id
           (Printf.sprintf "IR parse error: %s" e))
  | Ok loop -> (
      match
        try Ok (Mach.Machine.paper_clustered ~clusters:c.Proto.clusters ~copy_model:c.Proto.model)
        with Invalid_argument m -> Error m
      with
      | Error m ->
          structured_failure
            (Verify.Stage_error.make ~code:Proto.code_bad_machine
               ~stage:Verify.Stage_error.Ir_input ~subject:c.Proto.id
               (Printf.sprintf "machine rejected: %s" m))
      | Ok machine -> (
          let qkey = quarantine_key ~machine ~fault:c.Proto.fault loop in
          match Worker.quarantined srv.pool qkey with
          | Some crashes ->
              structured_failure (Proto.quarantine_error ~id:c.Proto.id ~crashes)
          | None -> (
              let deadline_ms =
                match c.Proto.deadline_ms with
                | Some _ as d -> d
                | None -> srv.cfg.default_deadline_ms
              in
              let token =
                Engine.Cancel.make
                  ?deadline:(Option.map (fun ms -> received +. (ms /. 1000.0)) deadline_ms)
                  ~clock:srv.cfg.clock ()
              in
              let key =
                if c.Proto.no_cache || srv.cfg.cache = None then None
                else Some (job_key ~machine loop)
              in
              let job =
                {
                  Worker.id = c.Proto.id;
                  trace_id;
                  want_trace = c.Proto.trace;
                  qkey;
                  loop;
                  machine;
                  key;
                  token;
                  submitted = received;
                  fault = c.Proto.fault;
                  attempt = 0;
                  deliver;
                }
              in
              (* Reserve the reply slot before pushing: a worker may pop
                 and deliver before try_push even returns. *)
              Mutex.lock conn.lock;
              conn.pending <- conn.pending + 1;
              Mutex.unlock conn.lock;
              let not_admitted () =
                Mutex.lock conn.lock;
                conn.pending <- conn.pending - 1;
                conn_close_if_done conn;
                Mutex.unlock conn.lock
              in
              match Admission.try_push srv.queue job with
              | `Admitted _ ->
                  Stats.bump srv.stats Obs.Counter.Serve_admitted 1;
                  Stats.note_admitted srv.stats
              | `Shed retry_after_ms ->
                  not_admitted ();
                  Stats.bump srv.stats Obs.Counter.Serve_shed 1;
                  Stats.note_shed srv.stats;
                  (* Sheds are anomalies even though no request ring
                     entry exists: the anomaly ring is how a post-mortem
                     finds them after the burst has passed. *)
                  Flight.record srv.flight
                    (Flight.shed ~trace_id ~id:c.Proto.id ~ts:(srv.cfg.clock ()));
                  Obs.Log.debug srv.cfg.logger ~trace_id
                    ~fields:[ ("id", Obs.Json.Str c.Proto.id) ]
                    "compile shed: queue full";
                  send
                    (Proto.Overload
                       {
                         id = c.Proto.id;
                         depth = Admission.depth srv.queue;
                         retry_after_ms;
                       })
              | `Closed ->
                  not_admitted ();
                  structured_failure (Proto.shutdown_error ~id:c.Proto.id))))

let handle_conn srv conn =
  let rd = Wire.reader conn.fd in
  let send reply = conn_send srv conn reply in
  let bad_frame detail =
    Stats.bump srv.stats Obs.Counter.Serve_bad_frames 1;
    Obs.Log.debug srv.cfg.logger
      ~fields:[ ("detail", Obs.Json.Str detail) ]
      "bad frame";
    send (Proto.Bad_frame { detail })
  in
  let rec loop () =
    match
      Wire.read_line ~slice_s:0.25 ~idle_timeout_s:srv.cfg.idle_timeout_s
        ~max_frame:srv.cfg.max_frame
        ~should_stop:(fun () -> Atomic.get srv.stop)
        rd
    with
    | `Eof | `Error _ ->
        (* The peer is gone: late replies would hit a recycled fd. *)
        conn_reader_done ~peer_gone:true conn
    | `Stopped | `Idle ->
        (* Stop reading, but let in-flight replies still flush. *)
        conn_reader_done conn
    | `Too_long ->
        (* The connection's framing is gone — reply once and hang up. *)
        bad_frame "frame exceeds the maximum size";
        conn_reader_done conn
    | `Line "" -> loop ()
    | `Line line -> (
        match Proto.request_of_string line with
        | Error detail ->
            bad_frame detail;
            loop ()
        | Ok Proto.Ping ->
            send Proto.Pong;
            loop ()
        | Ok Proto.Stats ->
            send (Proto.Stats_reply (Stats.snapshot srv.stats));
            loop ()
        | Ok Proto.Metrics ->
            send (Proto.Metrics_reply (Stats.metrics_json srv.stats));
            loop ()
        | Ok (Proto.Flight { id; anomalies }) ->
            send
              (Proto.Flight_reply
                 (Flight.to_json ?id ~anomalies_only:anomalies srv.flight));
            loop ()
        | Ok Proto.Shutdown ->
            if srv.cfg.allow_shutdown then begin
              send Proto.Bye;
              Atomic.set srv.stop true;
              conn_reader_done conn
            end
            else begin
              bad_frame "shutdown is not enabled on this daemon";
              loop ()
            end
        | Ok (Proto.Compile c) ->
            handle_compile srv ~conn ~send c;
            loop ())
  in
  Fun.protect ~finally:(fun () -> conn_reader_done conn) loop

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let listen_socket addr =
  let fd = Unix.socket (Wire.domain_of addr) Unix.SOCK_STREAM 0 in
  (try
     (match addr with
     | Wire.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
     | Wire.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
     Unix.bind fd (Wire.sockaddr_of addr);
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  fd

let install_signals stop =
  (* A worker writing into a dead client must see EPIPE, not die. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  List.iter
    (fun s -> try Sys.set_signal s handler with Invalid_argument _ -> ())
    [ Sys.sigterm; Sys.sigint ]

(* The SIGTERM drain's last act: the flight recorder's final dump, so a
   crashed-and-drained daemon still leaves its forensics behind. *)
let write_flight_dump cfg flight =
  match cfg.flight_out with
  | None -> ()
  | Some path -> (
      match
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (Obs.Json.to_string (Flight.to_json flight));
            output_char oc '\n')
      with
      | () -> Obs.Log.info cfg.logger (Printf.sprintf "rbp serve: flight dump written to %s" path)
      | exception Sys_error e ->
          Obs.Log.error cfg.logger
            (Printf.sprintf "rbp serve: cannot write flight dump: %s" e))

let run cfg =
  let stop = Atomic.make false in
  install_signals stop;
  let stats = Stats.make ~clock:cfg.clock () in
  let flight =
    Flight.make ~capacity:cfg.flight_capacity
      ~anomaly_capacity:cfg.flight_anomaly_capacity ~span_cap:cfg.span_cap
      ~clock:cfg.clock ()
  in
  let trace_ids = Obs.Trace_id.gen ~seed:cfg.trace_seed in
  let queue = Admission.create ~limit:cfg.queue_limit () in
  let pool =
    Worker.create ~queue ~stats ~flight ~cache:cfg.cache ~clock:cfg.clock
      ~faults_enabled:cfg.faults_enabled ~max_retries:cfg.max_retries
      ~workers:cfg.workers ()
  in
  let srv = { cfg; stop; stats; flight; trace_ids; queue; pool; conns = Atomic.make 0 } in
  let log_info m = Obs.Log.info cfg.logger m in
  match listen_socket cfg.addr with
  | exception e ->
      Obs.Log.error cfg.logger
        (Printf.sprintf "rbp serve: cannot listen on %s: %s" (Wire.addr_to_string cfg.addr)
           (Printexc.to_string e));
      Worker.stop pool;
      1
  | lfd ->
      log_info
        (Printf.sprintf "rbp serve: listening on %s (%d workers, queue limit %d%s)"
           (Wire.addr_to_string cfg.addr) (max 1 cfg.workers) cfg.queue_limit
           (if cfg.faults_enabled then ", fault injection ON" else ""));
      let rec accept_loop () =
        if Atomic.get stop then ()
        else begin
          (match Unix.select [ lfd ] [] [] 0.1 with
          | [], _, _ -> ()
          | _ -> (
              match Unix.accept lfd with
              | exception Unix.Unix_error _ -> ()
              | cfd, _ ->
                  Atomic.incr srv.conns;
                  let conn = conn_make cfd in
                  ignore
                    (Thread.create
                       (fun () ->
                         (* The fd is NOT closed here: conn_close_if_done
                            does it once every admitted job has answered. *)
                         Fun.protect
                           ~finally:(fun () -> Atomic.decr srv.conns)
                           (fun () -> try handle_conn srv conn with _ -> ()))
                       ()))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          accept_loop ()
        end
      in
      accept_loop ();
      log_info "rbp serve: draining";
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (match cfg.addr with
      | Wire.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
      | Wire.Tcp _ -> ());
      (* Answer everything admitted, then retire the pool. *)
      Worker.stop pool;
      (* Give connection threads (already unblocked by the stop flag in
         their read slices) a moment to flush and exit. *)
      let rec wait_conns budget =
        if Atomic.get srv.conns > 0 && budget > 0.0 then begin
          Thread.delay 0.05;
          wait_conns (budget -. 0.05)
        end
      in
      wait_conns 5.0;
      write_flight_dump cfg flight;
      log_info
        (Printf.sprintf "rbp serve: done (%s)"
           (String.concat ", "
              (List.map
                 (fun (n, v) -> Printf.sprintf "%s=%d" n v)
                 (Stats.snapshot stats))));
      0
