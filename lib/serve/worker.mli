(** The compile pool: worker domains, a supervisor, and a quarantine.

    Connection threads push {!job}s through the {!Admission} queue;
    each worker domain pops, compiles through the {!Robust.Driver}
    ladder (answering repeats from the {!Engine.Cache}), and calls the
    job's [deliver] exactly once with a structured reply. Three layers
    of isolation keep one request from hurting another:

    - {e per-job}: an unexpected exception becomes that request's
      [PIPE001] error reply — the domain keeps serving;
    - {e per-deadline}: the job's {!Engine.Cancel} token is polled
      before work starts (expired-in-queue requests are answered
      without compiling) and threaded into the ladder, which abandons
      the run at the next stage boundary with {!Robust.Driver.deadline_code};
    - {e per-domain}: a worker domain that dies outright (the simulated
      {!Crash}) is detected by the supervisor thread, which joins the
      corpse, restarts the slot ([serve.worker_restarts]), and either
      requeues the in-flight job or — after [max_retries] crashes —
      quarantines it ([SRV003], [serve.quarantined]) so a poison
      request cannot crash-loop the pool forever. *)

exception Crash of string
(** Simulated worker death; raised (only when the daemon enables fault
    injection) for jobs carrying the ["crash-worker"] poison marker. *)

type job = {
  id : string;
  trace_id : string;  (** resolved trace identity, echoed in every reply *)
  want_trace : bool;  (** attach the span tree to the reply *)
  qkey : string;  (** quarantine key: digest of (loop, machine, fault) *)
  loop : Ir.Loop.t;
  machine : Mach.Machine.t;
  key : string option;  (** cache key; [None] bypasses the cache *)
  token : Engine.Cancel.t;
  submitted : float;  (** clock reading at admission, for [queue_ms] *)
  fault : string option;
  attempt : int;  (** prior worker crashes of this job *)
  deliver : Proto.reply -> unit;  (** called exactly once *)
}

type t

val create :
  queue:job Admission.t ->
  stats:Stats.t ->
  flight:Flight.t ->
  cache:Engine.Cache.t option ->
  clock:(unit -> float) ->
  faults_enabled:bool ->
  max_retries:int ->
  workers:int ->
  unit ->
  t
(** Spawn [workers] domains (min 1) and the supervisor thread. *)

val quarantined : t -> string -> int option
(** Admission-time check: the crash count a quarantined key was
    convicted with, or [None] when the key is clean. *)

val idle : t -> bool
(** No queued jobs, no in-flight jobs, no corpse awaiting restart. *)

val stop : t -> unit
(** Graceful drain: close the queue, let the workers answer everything
    already admitted (crashes included — the supervisor keeps
    restarting domains throughout the drain), then join every domain
    and the supervisor. *)

val metrics_of_result : Robust.Driver.result -> Core.Metrics.loop_metrics
(** Paper metrics from a ladder result. Pipelined kernels report the
    true [ii / ideal_ii] degradation; flat (surrendered) code reports
    its list schedule's own IPC with a neutral degradation of 100 —
    the reply's [flat_cycles] field is the honest "not pipelined"
    signal. *)
