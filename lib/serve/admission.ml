type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  limit : int;
  mutable closed : bool;
}

let retry_after_base_ms = 25.0

let create ~limit () =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    limit = max 0 limit;
    closed = false;
  }

let locked t f =
  Mutex.lock t.lock;
  let r = try f () with e -> Mutex.unlock t.lock; raise e in
  Mutex.unlock t.lock;
  r

let depth t = locked t (fun () -> Queue.length t.items)

let retry_after_ms ~limit ~depth =
  (* Deterministic and proportional to how far past the limit we are, so
     clients under a deep backlog back off harder; a zero-limit queue
     (shed everything — the cram test's configuration) always quotes the
     base delay. *)
  retry_after_base_ms *. float_of_int (max 1 (depth - limit + 1))

let try_push t x =
  locked t (fun () ->
      if t.closed then `Closed
      else
        let d = Queue.length t.items in
        if d >= t.limit then `Shed (retry_after_ms ~limit:t.limit ~depth:d)
        else begin
          Queue.push x t.items;
          Condition.signal t.nonempty;
          `Admitted (d + 1)
        end)

let push_force t x =
  locked t (fun () ->
      if t.closed then false
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        true
      end)

let rec pop t =
  Mutex.lock t.lock;
  match Queue.pop t.items with
  | x ->
      Mutex.unlock t.lock;
      Some x
  | exception Queue.Empty ->
      if t.closed then begin
        Mutex.unlock t.lock;
        None
      end
      else begin
        Condition.wait t.nonempty t.lock;
        Mutex.unlock t.lock;
        pop t
      end

let close t =
  locked t (fun () ->
      t.closed <- true;
      (* Every parked worker must wake to observe the close. *)
      Condition.broadcast t.nonempty)

let closed t = locked t (fun () -> t.closed)
