let schema = "rbp-metrics/1"

(* The window lookbacks the metrics reply answers. One 60-cell ring of
   1 s slices serves both. *)
let lookbacks_s = [ 10.0; 60.0 ]

type t = {
  lock : Mutex.t;
  clock : unit -> float;
  gc_stat : unit -> Gc.stat;
  started : float;
  cells : (Obs.Counter.t, int ref) Hashtbl.t;
  queue_ms : Obs.Histogram.t;
  compile_ms : Obs.Histogram.t;
  total_ms : Obs.Histogram.t;
  rungs : (string, Obs.Histogram.t) Hashtbl.t;
  w_admitted : Obs.Window.t;
  w_shed : Obs.Window.t;
  w_results : Obs.Window.t;
  w_hits : Obs.Window.t;
}

let make ?(clock = fun () -> 0.0) ?(gc_stat = Gc.quick_stat) () =
  let w () = Obs.Window.make ~clock () in
  {
    lock = Mutex.create ();
    clock;
    gc_stat;
    started = clock ();
    cells = Hashtbl.create 32;
    queue_ms = Obs.Histogram.make ();
    compile_ms = Obs.Histogram.make ();
    total_ms = Obs.Histogram.make ();
    rungs = Hashtbl.create 8;
    w_admitted = w ();
    w_shed = w ();
    w_results = w ();
    w_hits = w ();
  }

let bump t c n =
  if n <> 0 then begin
    Mutex.lock t.lock;
    (match Hashtbl.find_opt t.cells c with
    | Some r -> r := !r + n
    | None -> Hashtbl.add t.cells c (ref n));
    Mutex.unlock t.lock
  end

let get t c =
  Mutex.lock t.lock;
  let v = match Hashtbl.find_opt t.cells c with Some r -> !r | None -> 0 in
  Mutex.unlock t.lock;
  v

let absorb t tr =
  List.iter
    (fun c -> bump t c (Obs.Trace.counter_total tr c))
    Obs.Counter.all

(* With [t.lock] held. *)
let snapshot_locked t =
  let cells = Hashtbl.fold (fun c r acc -> (Obs.Counter.name c, !r) :: acc) t.cells [] in
  List.sort compare cells

let snapshot t =
  Mutex.lock t.lock;
  let cells = snapshot_locked t in
  Mutex.unlock t.lock;
  cells

(* ------------------------------------------------------------------ *)
(* Metrics: histograms + rolling windows                               *)

let note_admitted t =
  Mutex.lock t.lock;
  Obs.Window.add t.w_admitted;
  Mutex.unlock t.lock

let note_shed t =
  Mutex.lock t.lock;
  Obs.Window.add t.w_shed;
  Mutex.unlock t.lock

let note_result t ~rung ~cache_hit ~queue_ms ~compile_ms ~total_ms =
  Mutex.lock t.lock;
  Obs.Histogram.record t.queue_ms queue_ms;
  Obs.Histogram.record t.compile_ms compile_ms;
  Obs.Histogram.record t.total_ms total_ms;
  Obs.Window.add t.w_results;
  if cache_hit then Obs.Window.add t.w_hits;
  (* Per-rung compile time only for code actually compiled on this
     request: a cache hit's compile_ms is ~0 and would dilute the rung
     it was originally produced by. *)
  (match rung with
  | Some r when not cache_hit ->
      let h =
        match Hashtbl.find_opt t.rungs r with
        | Some h -> h
        | None ->
            let h = Obs.Histogram.make () in
            Hashtbl.add t.rungs r h;
            h
      in
      Obs.Histogram.record h compile_ms
  | _ -> ());
  Mutex.unlock t.lock

let window_json_locked t over_s =
  let results = Obs.Window.total ~over_s t.w_results in
  let hits = Obs.Window.total ~over_s t.w_hits in
  let ratio =
    if results = 0 then 0.0 else float_of_int hits /. float_of_int results
  in
  Obs.Json.Obj
    [
      ("requests_per_s", Obs.Json.Num (Obs.Window.rate ~over_s t.w_admitted));
      ("overloads_per_s", Obs.Json.Num (Obs.Window.rate ~over_s t.w_shed));
      ("results_per_s", Obs.Json.Num (Obs.Window.rate ~over_s t.w_results));
      ("cache_hit_ratio", Obs.Json.Num ratio);
    ]

(* Memory telemetry off [Gc.quick_stat] (no heap walk): enough to spot
   a leaking or thrashing daemon from the metrics op alone. Injectable
   so fake-clock tests can pin the whole document. *)
let gc_json_locked t =
  let s = t.gc_stat () in
  let num x = Obs.Json.Num x in
  let int_num n = Obs.Json.Num (float_of_int n) in
  Obs.Json.Obj
    [
      ("live_words", int_num s.Gc.live_words);
      ("heap_words", int_num s.Gc.heap_words);
      ("minor_collections", int_num s.Gc.minor_collections);
      ("major_collections", int_num s.Gc.major_collections);
      ("compactions", int_num s.Gc.compactions);
      ("minor_words", num s.Gc.minor_words);
    ]

let metrics_json t =
  Mutex.lock t.lock;
  let now = t.clock () in
  let counters =
    Obs.Json.Obj
      (List.map
         (fun (n, v) -> (n, Obs.Json.Num (float_of_int v)))
         (snapshot_locked t))
  in
  let rungs =
    Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.rungs []
    |> List.sort compare
    |> List.map (fun (name, h) -> (name, Obs.Histogram.summary_json h))
  in
  let windows =
    List.map
      (fun over_s ->
        (Printf.sprintf "%.0fs" over_s, window_json_locked t over_s))
      lookbacks_s
  in
  let j =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str schema);
        ("uptime_s", Obs.Json.Num (now -. t.started));
        ("counters", counters);
        ( "latency",
          Obs.Json.Obj
            [
              ("queue_ms", Obs.Histogram.summary_json t.queue_ms);
              ("compile_ms", Obs.Histogram.summary_json t.compile_ms);
              ("total_ms", Obs.Histogram.summary_json t.total_ms);
            ] );
        ("rungs", Obs.Json.Obj rungs);
        ("windows", Obs.Json.Obj windows);
        ("gc", gc_json_locked t);
      ]
  in
  Mutex.unlock t.lock;
  j
