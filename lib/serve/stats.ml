type t = { lock : Mutex.t; cells : (Obs.Counter.t, int ref) Hashtbl.t }

let make () = { lock = Mutex.create (); cells = Hashtbl.create 32 }

let bump t c n =
  if n <> 0 then begin
    Mutex.lock t.lock;
    (match Hashtbl.find_opt t.cells c with
    | Some r -> r := !r + n
    | None -> Hashtbl.add t.cells c (ref n));
    Mutex.unlock t.lock
  end

let get t c =
  Mutex.lock t.lock;
  let v = match Hashtbl.find_opt t.cells c with Some r -> !r | None -> 0 in
  Mutex.unlock t.lock;
  v

let absorb t tr =
  List.iter
    (fun c -> bump t c (Obs.Trace.counter_total tr c))
    Obs.Counter.all

let snapshot t =
  Mutex.lock t.lock;
  let cells = Hashtbl.fold (fun c r acc -> (Obs.Counter.name c, !r) :: acc) t.cells [] in
  Mutex.unlock t.lock;
  List.sort compare cells
