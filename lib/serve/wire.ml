type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let addr_of_string s =
  let tcp rest =
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "tcp address %S lacks a port" rest)
    | Some i -> (
        let host = String.sub rest 0 i in
        let port = String.sub rest (i + 1) (String.length rest - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 -> Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | _ -> Error (Printf.sprintf "bad port %S" port))
  in
  if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_path (String.sub s 5 (String.length s - 5)))
  else if String.length s >= 4 && String.sub s 0 4 = "tcp:" then
    tcp (String.sub s 4 (String.length s - 4))
  else if String.contains s '/' then Ok (Unix_path s)
  else if String.contains s ':' then tcp s
  else Ok (Unix_path s)

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } -> raise Not_found
          | h -> h.Unix.h_addr_list.(0))
      in
      Unix.ADDR_INET (ip, port)

let domain_of = function Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

(* ------------------------------------------------------------------ *)
(* Line-framed reads                                                   *)

type reader = { fd : Unix.file_descr; pending : Buffer.t; chunk : bytes }

let reader fd = { fd; pending = Buffer.create 512; chunk = Bytes.create 8192 }

let take_line r =
  let s = Buffer.contents r.pending in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear r.pending;
      Buffer.add_substring r.pending s (i + 1) (String.length s - i - 1);
      (* Tolerate CRLF clients. *)
      Some
        (if line <> "" && line.[String.length line - 1] = '\r' then
           String.sub line 0 (String.length line - 1)
         else line)

(* One line, reading in [slice_s] select slices so the caller can react
   to a stop flag between slices. The budget is {e total} wait per
   frame, deliberately not reset by progress — the slow-loris defense:
   a client may dribble a frame byte by byte, but the whole frame must
   arrive within [idle_timeout_s] or the read gives up with [`Idle]. *)
let read_line ?(slice_s = 0.5) ?(idle_timeout_s = 30.0) ?(max_frame = 1 lsl 20)
    ?(should_stop = fun () -> false) r =
  let rec go spent =
    match take_line r with
    | Some line -> `Line line
    | None ->
        if Buffer.length r.pending > max_frame then `Too_long
        else if should_stop () then `Stopped
        else if spent >= idle_timeout_s then `Idle
        else begin
          match Unix.select [ r.fd ] [] [] slice_s with
          | [], _, _ -> go (spent +. slice_s)
          | _ -> (
              match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
              | 0 -> `Eof
              | n ->
                  Buffer.add_subbytes r.pending r.chunk 0 n;
                  go (spent +. slice_s)
              | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                ->
                  go spent
              | exception Unix.Unix_error (e, _, _) -> `Error (Unix.error_message e))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go spent
        end
  in
  go 0.0

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off >= Bytes.length b then Ok ()
    else
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

let write_line fd s = write_all fd (s ^ "\n")
