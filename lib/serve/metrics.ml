type series = {
  count : int;
  sum : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

type window = {
  requests_per_s : float;
  overloads_per_s : float;
  results_per_s : float;
  cache_hit_ratio : float;
}

type t = {
  uptime_s : float;
  counters : (string * int) list;
  queue : series;
  compile : series;
  total : series;
  rungs : (string * series) list;
  windows : (string * window) list;
  gc : (string * float) list;
}

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

let ( let* ) = Option.bind
let field name conv j = Option.bind (Obs.Json.member name j) conv

let series_of_json j =
  let* count = field "count" Obs.Json.to_int j in
  let* sum = field "sum" Obs.Json.to_num j in
  let* p50 = field "p50" Obs.Json.to_num j in
  let* p90 = field "p90" Obs.Json.to_num j in
  let* p99 = field "p99" Obs.Json.to_num j in
  let* max = field "max" Obs.Json.to_num j in
  Some { count; sum; p50; p90; p99; max }

let window_of_json j =
  let* requests_per_s = field "requests_per_s" Obs.Json.to_num j in
  let* overloads_per_s = field "overloads_per_s" Obs.Json.to_num j in
  let* results_per_s = field "results_per_s" Obs.Json.to_num j in
  let* cache_hit_ratio = field "cache_hit_ratio" Obs.Json.to_num j in
  Some { requests_per_s; overloads_per_s; results_per_s; cache_hit_ratio }

let of_json j =
  match field "schema" Obs.Json.to_str j with
  | Some s when s <> Stats.schema ->
      Error (Printf.sprintf "unknown metrics schema %S (want %S)" s Stats.schema)
  | None -> Error "metrics document lacks a \"schema\" field"
  | Some _ -> (
      let decoded =
        let* uptime_s = field "uptime_s" Obs.Json.to_num j in
        let* counters = Obs.Json.member "counters" j in
        let* counters =
          match counters with
          | Obs.Json.Obj kvs ->
              Some
                (List.filter_map
                   (fun (n, v) -> Option.map (fun v -> (n, v)) (Obs.Json.to_int v))
                   kvs)
          | _ -> None
        in
        let* latency = Obs.Json.member "latency" j in
        let* queue = Option.bind (Obs.Json.member "queue_ms" latency) series_of_json in
        let* compile =
          Option.bind (Obs.Json.member "compile_ms" latency) series_of_json
        in
        let* total = Option.bind (Obs.Json.member "total_ms" latency) series_of_json in
        let rungs =
          match Obs.Json.member "rungs" j with
          | Some (Obs.Json.Obj kvs) ->
              List.filter_map
                (fun (n, v) -> Option.map (fun s -> (n, s)) (series_of_json v))
                kvs
          | _ -> []
        in
        let* windows = Obs.Json.member "windows" j in
        let* windows =
          match windows with
          | Obs.Json.Obj kvs ->
              Some
                (List.filter_map
                   (fun (n, v) -> Option.map (fun w -> (n, w)) (window_of_json v))
                   kvs)
          | _ -> None
        in
        (* Additive: daemons predating the gc block still parse. *)
        let gc =
          match Obs.Json.member "gc" j with
          | Some (Obs.Json.Obj kvs) ->
              List.filter_map
                (fun (n, v) -> Option.map (fun v -> (n, v)) (Obs.Json.to_num v))
                kvs
          | _ -> []
        in
        Some { uptime_s; counters; queue; compile; total; rungs; windows; gc }
      in
      match decoded with
      | Some t -> Ok t
      | None -> Error "malformed metrics document")

let of_string s =
  match Obs.Json.of_string s with
  | Error e -> Error ("metrics document is not JSON: " ^ e)
  | Ok j -> of_json j

(* ------------------------------------------------------------------ *)
(* Dashboard rendering                                                 *)

let series_line b label (s : series) =
  Buffer.add_string b
    (Printf.sprintf "  %-18s %6d %10.3f %10.3f %10.3f %10.3f\n" label s.count
       s.p50 s.p90 s.p99 s.max)

let render t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "rbp serve metrics — uptime %.1fs\n\n" t.uptime_s);
  Buffer.add_string b
    (Printf.sprintf "%-20s %6s %10s %10s %10s %10s\n" "latency (ms)" "count"
       "p50" "p90" "p99" "max");
  series_line b "queue" t.queue;
  series_line b "compile" t.compile;
  series_line b "total" t.total;
  if t.rungs <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "\n%-20s %6s %10s %10s %10s %10s\n" "rung compile (ms)"
         "count" "p50" "p90" "p99" "max");
    List.iter (fun (name, s) -> series_line b name s) t.rungs
  end;
  if t.windows <> [] then begin
    Buffer.add_string b (Printf.sprintf "\n%-20s" "rolling");
    List.iter (fun (n, _) -> Buffer.add_string b (Printf.sprintf " %9s" n)) t.windows;
    Buffer.add_char b '\n';
    let row label pick percent =
      Buffer.add_string b (Printf.sprintf "  %-18s" label);
      List.iter
        (fun (_, w) ->
          let v = pick w in
          let v = if percent then 100.0 *. v else v in
          Buffer.add_string b (Printf.sprintf " %9.2f" v))
        t.windows;
      Buffer.add_char b '\n'
    in
    row "requests/s" (fun w -> w.requests_per_s) false;
    row "overloads/s" (fun w -> w.overloads_per_s) false;
    row "results/s" (fun w -> w.results_per_s) false;
    row "cache hit %" (fun w -> w.cache_hit_ratio) true
  end;
  if t.gc <> [] then begin
    Buffer.add_string b "\ngc\n";
    List.iter
      (fun (n, v) ->
        Buffer.add_string b
          (if Float.is_integer v && Float.abs v < 1e15 then
             Printf.sprintf "  %-32s %.0f\n" n v
           else Printf.sprintf "  %-32s %.1f\n" n v))
      t.gc
  end;
  if t.counters <> [] then begin
    Buffer.add_string b "\ncounters\n";
    List.iter
      (fun (n, v) -> Buffer.add_string b (Printf.sprintf "  %-32s %d\n" n v))
      t.counters
  end;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)

(* "serve.cache_hits" -> "rbp_serve_cache_hits" *)
let prom_name s =
  let b = Buffer.create (String.length s + 4) in
  Buffer.add_string b "rbp_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    s;
  Buffer.contents b

let summary_samples ?(labels = []) (s : series) =
  [
    ("", labels @ [ ("quantile", "0.5") ], s.p50);
    ("", labels @ [ ("quantile", "0.9") ], s.p90);
    ("", labels @ [ ("quantile", "0.99") ], s.p99);
    ("_sum", labels, s.sum);
    ("_count", labels, float_of_int s.count);
  ]

let prometheus t =
  let counter_families =
    List.map
      (fun (n, v) ->
        (prom_name n ^ "_total", "counter", [ ("", [], float_of_int v) ]))
      (List.sort compare t.counters)
  in
  let latency_families =
    [
      ("rbp_serve_compile_latency_ms", "summary", summary_samples t.compile);
      ("rbp_serve_queue_latency_ms", "summary", summary_samples t.queue);
      ("rbp_serve_total_latency_ms", "summary", summary_samples t.total);
    ]
  in
  let rung_family =
    match List.sort compare t.rungs with
    | [] -> []
    | rungs ->
        [
          ( "rbp_serve_rung_compile_ms",
            "summary",
            List.concat_map
              (fun (name, s) -> summary_samples ~labels:[ ("rung", name) ] s)
              rungs );
        ]
  in
  let windows = List.sort compare t.windows in
  let window_family name pick =
    match windows with
    | [] -> []
    | ws ->
        [ (name, "gauge", List.map (fun (n, w) -> ("", [ ("window", n) ], pick w)) ws) ]
  in
  let gc_families =
    List.map
      (fun (n, v) -> (prom_name ("serve.gc." ^ n), "gauge", [ ("", [], v) ]))
      (List.sort compare t.gc)
  in
  let families =
    List.concat
      [
        counter_families;
        gc_families;
        window_family "rbp_serve_cache_hit_ratio" (fun w -> w.cache_hit_ratio);
        latency_families;
        window_family "rbp_serve_overloads_per_second" (fun w -> w.overloads_per_s);
        window_family "rbp_serve_requests_per_second" (fun w -> w.requests_per_s);
        window_family "rbp_serve_results_per_second" (fun w -> w.results_per_s);
        rung_family;
        [ ("rbp_serve_uptime_seconds", "gauge", [ ("", [], t.uptime_s) ]) ];
      ]
  in
  let families =
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) families
  in
  Obs.Export.prometheus families
