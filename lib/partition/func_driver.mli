(** Whole-function partitioning — the paper's other experiment.

    The framework is "applicable to entire programs": the RCG is built
    globally over every basic block and partitioned once, so values keep
    one home bank across the function ([Hiser et al. 1999] measured ~11%
    degradation on 4-bank machines this way). Here each block is
    list-scheduled (no pipelining — blocks execute straight-line), copies
    are inserted per block, and blocks are rescheduled under cluster
    constraints.

    Cycle counts are weighted by estimated execution frequency
    [10^depth], the same frequency model the RCG weights use, so inner
    blocks dominate the degradation figure exactly as they dominate run
    time. *)

type block_result = {
  label : string;
  depth : int;
  ideal_len : int;      (** issue cycles, monolithic machine *)
  clustered_len : int;  (** issue cycles after partitioning + copies *)
  n_copies : int;
}

type result = {
  func : Ir.Func.t;
  machine : Mach.Machine.t;
  blocks : block_result list;
  assignment : Assign.t;       (** global banks, incl. copy registers *)
  rewritten : Ir.Func.t;       (** function with copies spliced in *)
  n_copies : int;
  ideal_cycles : float;        (** Σ 10^depth · ideal_len *)
  clustered_cycles : float;
  degradation : float;         (** 100 · clustered/ideal *)
}

val pipeline :
  ?obs:Obs.Trace.t ->
  ?weights:Rcg.Weights.t ->
  ?verify:bool ->
  machine:Mach.Machine.t ->
  Ir.Func.t ->
  (result, Verify.Stage_error.t) Stdlib.result
(** Raises nothing; copy-insertion, scheduling and verification failures
    are reported as structured {!Verify.Stage_error} values naming the
    stage and offending block. On a
    monolithic machine degradation is 100 and no copies are inserted.
    [verify] (default false) re-checks every rewritten block for operand
    bank-locality and copy well-formedness with the independent
    {!Verify} analyzers; an error-severity diagnostic fails the
    pipeline.

    [obs] (default off) traces one [func.pipeline] span per call with
    an [rcg.build] child and one [func.block] span per basic block, and
    feeds the greedy counters. *)
