type partitioner =
  | Greedy of Rcg.Weights.t
  | Bug
  | Uas
  | Custom of (Mach.Machine.t -> Ddg.Graph.t -> Rcg.Graph.t option -> Assign.t)

type result = {
  loop : Ir.Loop.t;
  machine : Mach.Machine.t;
  ideal : Sched.Modulo.outcome;
  clustered : Sched.Modulo.outcome;
  assignment : Assign.t;
  rewritten : Ir.Loop.t;
  n_copies : int;
  degradation : float;
  ipc_ideal : float;
  ipc_clustered : float;
}

let cluster_map assignment loop =
  (* Every lookup the schedulers will ever make is materialized here, so a
     malformed assignment (a register of the body with no bank) surfaces as
     an [Error] before any scheduling starts instead of a mid-schedule
     exception. [Assign.cluster_of_op] raises on unassigned registers. *)
  let tbl = Hashtbl.create 64 in
  match
    List.iter
      (fun op -> Hashtbl.replace tbl (Ir.Op.id op) (Assign.cluster_of_op assignment op))
      (Ir.Loop.ops loop)
  with
  | () ->
      Ok
        (fun id ->
          match Hashtbl.find_opt tbl id with
          | Some c -> c
          | None ->
              (* True internal invariant: the schedulers only query ids of
                 the DDG built from this same body, all of which are in the
                 table. An unknown id is a caller bug, not bad input. *)
              invalid_arg (Printf.sprintf "Driver.cluster_map: unknown op id %d" id))
  | exception Invalid_argument msg -> Error msg

let partitioner_name = function
  | Greedy _ -> "greedy"
  | Bug -> "bug"
  | Uas -> "uas"
  | Custom _ -> "custom"

let choose_partition ?obs partitioner ~machine ~ddg ~ideal_kernel ~depth =
  match partitioner with
  | Bug -> Bug.partition ~machine ddg
  | Uas -> Uas.partition ~machine ddg
  | Greedy weights ->
      let rcg =
        Obs.Trace.span obs "rcg.build" (fun () ->
            let src = Rcg.Build.source_of_kernel ~ddg ~depth ideal_kernel in
            Rcg.Build.build ?obs ~weights src)
      in
      Greedy.partition ?obs ~weights ~banks:machine.Mach.Machine.clusters rcg
  | Custom f ->
      let src = Rcg.Build.source_of_kernel ~ddg ~depth ideal_kernel in
      let rcg = Rcg.Build.build src in
      f machine ddg (Some rcg)

(* Feed [copies.inserted{SRC->DST}] from the copy ops of a rewritten
   body: a copy's source bank is its (sole) use's, its destination bank
   its def's. Skipped entirely without a context. *)
let count_copy_pairs obs ~assignment ops =
  match obs with
  | None -> ()
  | Some _ ->
      List.iter
        (fun op ->
          if Ir.Op.is_copy op then
            match (Ir.Op.uses op, Ir.Op.defs op) with
            | src :: _, dst :: _ -> (
                match (Assign.bank_opt assignment src, Assign.bank_opt assignment dst) with
                | Some b1, Some b2 ->
                    Obs.Trace.incr obs ~label:(Printf.sprintf "%d->%d" b1 b2)
                      Obs.Counter.Copies_inserted 1
                | _ -> ())
            | _ -> ())
        ops

type scheduler = Rau | Swing

let deadline_code = "PIPE008"

let pipeline ?obs ?(cancel = fun () -> false) ?(partitioner = Greedy Rcg.Weights.default)
    ?(scheduler = Rau) ?budget_ratio ?(verify = false) ~machine loop =
  let m : Mach.Machine.t = machine in
  let subject = Ir.Loop.name loop in
  Obs.Trace.span obs "pipeline"
    ~attrs:
      [ ("loop", subject); ("machine", m.Mach.Machine.name);
        ("partitioner", partitioner_name partitioner) ]
  @@ fun () ->
  let fail ?code stage message = Error (Verify.Stage_error.make ?code ~stage ~subject message) in
  (* Cooperative deadline, polled at stage boundaries exactly as the
     resilient ladder does: a fired token turns into an ordinary stage
     failure carrying PIPE008, never an exception. *)
  let deadline stage k =
    if cancel () then fail ~code:deadline_code stage "deadline exceeded" else k ()
  in
  deadline Verify.Stage_error.Ideal_schedule @@ fun () ->
  let schedule_ideal ddg =
    Obs.Trace.span obs "schedule.ideal" @@ fun () ->
    match scheduler with
    | Rau -> Sched.Modulo.ideal ?obs ?budget_ratio ~machine:m ddg
    | Swing -> Sched.Swing.ideal ?obs ~machine:m ddg
  in
  let schedule_clustered ~cluster_of ~mii ddg =
    Obs.Trace.span obs "schedule.clustered" @@ fun () ->
    match scheduler with
    | Rau -> Sched.Modulo.schedule ?obs ?budget_ratio ~cluster_of ~machine:m ~mii ddg
    | Swing -> Sched.Swing.schedule ?obs ~cluster_of ~machine:m ~mii ddg
  in
  let ddg =
    Obs.Trace.span obs "ddg.build" (fun () -> Ddg.Graph.of_loop ~latency:m.latency loop)
  in
  match schedule_ideal ddg with
  | None ->
      fail Verify.Stage_error.Ideal_schedule
        "no feasible II found for the ideal (monolithic) pipeline"
  | Some ideal ->
      let n_ops = Ir.Loop.size loop in
      let ipc_ideal = float_of_int n_ops /. float_of_int ideal.Sched.Modulo.ii in
      (* Optional self-check: independent re-verification of every stage
         artifact; an error-severity diagnostic fails the pipeline. *)
      let verified stages k =
        if not verify then k ()
        else
          let diags = Obs.Trace.span obs "verify" (fun () -> Verify.Pipeline.run ?obs stages) in
          if Verify.Diag.has_errors diags then
            Error (Verify.Stage_error.of_diags ~subject diags)
          else k ()
      in
      if Mach.Machine.is_monolithic m then
        let stages =
          { (Verify.Pipeline.stages ~machine:m loop) with
            Verify.Pipeline.ideal = Some (ddg, ideal.Sched.Modulo.kernel) }
        in
        verified stages @@ fun () ->
        Ok
          {
            loop; machine = m; ideal; clustered = ideal;
            assignment =
              Assign.of_list
                (List.map (fun r -> (r, 0)) (Ir.Vreg.Set.elements (Ir.Loop.vregs loop)));
            rewritten = loop; n_copies = 0; degradation = 100.0; ipc_ideal;
            ipc_clustered = ipc_ideal;
          }
      else begin
        deadline Verify.Stage_error.Partitioning @@ fun () ->
        match
          Obs.Trace.span obs "partition" (fun () ->
              choose_partition ?obs partitioner ~machine:m ~ddg
                ~ideal_kernel:ideal.Sched.Modulo.kernel ~depth:(Ir.Loop.depth loop))
        with
        | exception Invalid_argument msg ->
            (* A partitioner rejecting its input (bad pins, banks < 1, a
               custom function raising) is data-dependent, not a bug here. *)
            fail Verify.Stage_error.Partitioning msg
        | assignment -> (
        (* Registers the RCG may have missed (none in practice) park in 0. *)
        let assignment =
          Ir.Vreg.Set.fold
            (fun r acc -> if Ir.Vreg.Map.mem r acc then acc else Ir.Vreg.Map.add r 0 acc)
            (Ir.Loop.vregs loop) assignment
        in
        if not (Assign.all_in_range ~banks:m.clusters assignment) then
          (* Caught here so neither copy insertion nor the resource tables
             ever see an out-of-range bank (they treat that as an internal
             invariant and raise). *)
          fail ~code:"PT002" Verify.Stage_error.Partitioning
            "assignment names a bank the machine lacks"
        else
        deadline Verify.Stage_error.Copy_insertion @@ fun () ->
        match
          Obs.Trace.span obs "copies.insert" (fun () ->
              Copies.insert_loop ?obs ~machine:m ~assignment loop)
        with
        | exception Invalid_argument msg -> fail Verify.Stage_error.Copy_insertion msg
        | ins -> (
        count_copy_pairs obs ~assignment:ins.Copies.assignment
          (Ir.Loop.ops ins.Copies.loop);
        let ddg' =
          Obs.Trace.span obs "ddg.rebuild" (fun () ->
              Ddg.Graph.of_loop ~latency:m.latency ins.Copies.loop)
        in
        match cluster_map ins.Copies.assignment ins.Copies.loop with
        | Error msg -> fail ~code:"PT001" Verify.Stage_error.Partitioning msg
        | Ok cluster_of -> (
        deadline Verify.Stage_error.Clustered_schedule @@ fun () ->
        let mii =
          Sched.Modulo.clustered_mii ~machine:m
            ~ops_per_cluster:ins.Copies.ops_per_cluster
            ~copies_per_cluster:ins.Copies.copies_per_cluster ddg'
        in
        Obs.Trace.set_gauge obs Obs.Counter.Clustered_mii mii;
        match schedule_clustered ~cluster_of ~mii ddg' with
        | None ->
            fail Verify.Stage_error.Clustered_schedule
              (Printf.sprintf "no feasible II found for the clustered pipeline (MII %d)" mii)
        | Some clustered ->
            let count_op (op : Ir.Op.t) =
              match m.copy_model with
              | Mach.Machine.Embedded -> true
              | Mach.Machine.Copy_unit -> not (Ir.Op.is_copy op)
            in
            let ipc_clustered =
              Sched.Kernel.ipc ~count:count_op clustered.Sched.Modulo.kernel
            in
            let stages =
              {
                (Verify.Pipeline.stages ~machine:m loop) with
                Verify.Pipeline.ideal = Some (ddg, ideal.Sched.Modulo.kernel);
                partition = Some (ins.Copies.assignment, ins.Copies.loop);
                clustered = Some (ddg', clustered.Sched.Modulo.kernel);
              }
            in
            verified stages @@ fun () ->
            Ok
              {
                loop; machine = m; ideal; clustered;
                assignment = ins.Copies.assignment; rewritten = ins.Copies.loop;
                n_copies = ins.Copies.n_copies;
                degradation =
                  100.0 *. float_of_int clustered.Sched.Modulo.ii
                  /. float_of_int ideal.Sched.Modulo.ii;
                ipc_ideal; ipc_clustered;
              })))
      end
