type partitioner =
  | Greedy of Rcg.Weights.t
  | Bug
  | Uas
  | Custom of (Mach.Machine.t -> Ddg.Graph.t -> Rcg.Graph.t option -> Assign.t)

type result = {
  loop : Ir.Loop.t;
  machine : Mach.Machine.t;
  ideal : Sched.Modulo.outcome;
  clustered : Sched.Modulo.outcome;
  assignment : Assign.t;
  rewritten : Ir.Loop.t;
  n_copies : int;
  degradation : float;
  ipc_ideal : float;
  ipc_clustered : float;
}

let cluster_map assignment loop =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun op -> Hashtbl.replace tbl (Ir.Op.id op) (Assign.cluster_of_op assignment op))
    (Ir.Loop.ops loop);
  fun id ->
    match Hashtbl.find_opt tbl id with Some c -> c | None -> raise Not_found

let choose_partition partitioner ~machine ~ddg ~ideal_kernel ~depth =
  match partitioner with
  | Bug -> Bug.partition ~machine ddg
  | Uas -> Uas.partition ~machine ddg
  | Greedy weights ->
      let src = Rcg.Build.source_of_kernel ~ddg ~depth ideal_kernel in
      let rcg = Rcg.Build.build ~weights src in
      Greedy.partition ~weights ~banks:machine.Mach.Machine.clusters rcg
  | Custom f ->
      let src = Rcg.Build.source_of_kernel ~ddg ~depth ideal_kernel in
      let rcg = Rcg.Build.build src in
      f machine ddg (Some rcg)

type scheduler = Rau | Swing

let pipeline ?(partitioner = Greedy Rcg.Weights.default) ?(scheduler = Rau) ?budget_ratio
    ?(verify = false) ~machine loop =
  let m : Mach.Machine.t = machine in
  let schedule_ideal ddg =
    match scheduler with
    | Rau -> Sched.Modulo.ideal ?budget_ratio ~machine:m ddg
    | Swing -> Sched.Swing.ideal ~machine:m ddg
  in
  let schedule_clustered ~cluster_of ~mii ddg =
    match scheduler with
    | Rau -> Sched.Modulo.schedule ?budget_ratio ~cluster_of ~machine:m ~mii ddg
    | Swing -> Sched.Swing.schedule ~cluster_of ~machine:m ~mii ddg
  in
  let ddg = Ddg.Graph.of_loop ~latency:m.latency loop in
  match schedule_ideal ddg with
  | None -> Error (Printf.sprintf "loop %s: ideal pipeline failed" (Ir.Loop.name loop))
  | Some ideal ->
      let n_ops = Ir.Loop.size loop in
      let ipc_ideal = float_of_int n_ops /. float_of_int ideal.Sched.Modulo.ii in
      (* Optional self-check: independent re-verification of every stage
         artifact; an error-severity diagnostic fails the pipeline. *)
      let verified stages k =
        if not verify then k ()
        else
          match Verify.Pipeline.verdict (Verify.Pipeline.run stages) with
          | Ok () -> k ()
          | Error e ->
              Error (Printf.sprintf "loop %s: verification failed:\n%s" (Ir.Loop.name loop) e)
      in
      if Mach.Machine.is_monolithic m then
        let stages =
          { (Verify.Pipeline.stages ~machine:m loop) with
            Verify.Pipeline.ideal = Some (ddg, ideal.Sched.Modulo.kernel) }
        in
        verified stages @@ fun () ->
        Ok
          {
            loop; machine = m; ideal; clustered = ideal;
            assignment =
              Assign.of_list
                (List.map (fun r -> (r, 0)) (Ir.Vreg.Set.elements (Ir.Loop.vregs loop)));
            rewritten = loop; n_copies = 0; degradation = 100.0; ipc_ideal;
            ipc_clustered = ipc_ideal;
          }
      else begin
        let assignment =
          choose_partition partitioner ~machine:m ~ddg
            ~ideal_kernel:ideal.Sched.Modulo.kernel ~depth:(Ir.Loop.depth loop)
        in
        (* Registers the RCG may have missed (none in practice) park in 0. *)
        let assignment =
          Ir.Vreg.Set.fold
            (fun r acc -> if Ir.Vreg.Map.mem r acc then acc else Ir.Vreg.Map.add r 0 acc)
            (Ir.Loop.vregs loop) assignment
        in
        let ins = Copies.insert_loop ~machine:m ~assignment loop in
        let ddg' = Ddg.Graph.of_loop ~latency:m.latency ins.Copies.loop in
        let cluster_of = cluster_map ins.Copies.assignment ins.Copies.loop in
        let mii =
          max
            (Ddg.Minii.res_mii_clustered ~machine:m
               ~ops_per_cluster:ins.Copies.ops_per_cluster
               ~copies_per_cluster:ins.Copies.copies_per_cluster)
            (Ddg.Minii.rec_mii ddg')
        in
        match schedule_clustered ~cluster_of ~mii ddg' with
        | None ->
            Error (Printf.sprintf "loop %s: clustered pipeline failed" (Ir.Loop.name loop))
        | Some clustered ->
            let count_op (op : Ir.Op.t) =
              match m.copy_model with
              | Mach.Machine.Embedded -> true
              | Mach.Machine.Copy_unit -> not (Ir.Op.is_copy op)
            in
            let ipc_clustered =
              Sched.Kernel.ipc ~count:count_op clustered.Sched.Modulo.kernel
            in
            let stages =
              {
                (Verify.Pipeline.stages ~machine:m loop) with
                Verify.Pipeline.ideal = Some (ddg, ideal.Sched.Modulo.kernel);
                partition = Some (ins.Copies.assignment, ins.Copies.loop);
                clustered = Some (ddg', clustered.Sched.Modulo.kernel);
              }
            in
            verified stages @@ fun () ->
            Ok
              {
                loop; machine = m; ideal; clustered;
                assignment = ins.Copies.assignment; rewritten = ins.Copies.loop;
                n_copies = ins.Copies.n_copies;
                degradation =
                  100.0 *. float_of_int clustered.Sched.Modulo.ii
                  /. float_of_int ideal.Sched.Modulo.ii;
                ipc_ideal; ipc_clustered;
              }
      end
