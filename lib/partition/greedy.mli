(** The paper's greedy RCG partitioner (Section 5, Figure 4).

    RCG nodes are placed in decreasing node-weight order. For each node,
    every bank's benefit is the sum of edge weights to neighbours already
    in that bank, minus a balance penalty proportional to the bank's
    current population; the node goes to the best bank.

    Two documented deviations from the (buggy-as-printed) Figure 4
    pseudo-code: we select the maximum benefit even when all benefits are
    negative (the printed [BestBenefit = 0] initialization would dump
    every isolated node in bank 0, defeating the stated goal of spreading
    registers evenly), and the balance penalty is scaled by the mean
    positive edge weight so it is commensurate with benefits (the printed
    penalty expression is OCR-garbled). Ties go to the lowest bank
    index. Pinned nodes go to their pinned bank unconditionally. *)

val partition :
  ?obs:Obs.Trace.t ->
  ?weights:Rcg.Weights.t ->
  banks:int ->
  Rcg.Graph.t ->
  Assign.t
(** [weights] supplies the balance knob (default {!Rcg.Weights.default}).
    Raises [Invalid_argument] when [banks < 1] or a pin is out of
    range. [obs] traces one [greedy.partition] span and the
    [greedy.decisions] / [greedy.tie_breaks] / [greedy.pinned]
    counters (a tie-break is a placement where two or more banks shared
    the best benefit; the lowest index wins). *)

val benefit :
  balance_penalty:float ->
  placed:(Ir.Vreg.t -> int option) ->
  counts:int array ->
  Rcg.Graph.t ->
  Ir.Vreg.t ->
  int ->
  float
(** The benefit of placing one node in one bank given the current partial
    placement — exposed for tests and for the UAS baseline. *)
