type result = {
  loop : Ir.Loop.t;
  assignment : Assign.t;
  n_copies : int;
  copies_per_cluster : int array;
  ops_per_cluster : int array;
}

(* Which value of register r does a use at body position q read? *)
type reaching = Invariant | Carried | Same_iter of int

let classify ~defs_of r q =
  match Ir.Vreg.Map.find_opt r defs_of with
  | None | Some [] -> Invariant
  | Some positions ->
      let before = List.filter (fun p -> p < q) positions in
      (match List.rev before with
      | [] -> Carried
      | p :: _ -> Same_iter p)

let copy_name r cluster = Printf.sprintf "%s@c%d" (Ir.Vreg.to_string r) cluster


let insert_loop ?obs ~machine ~assignment loop =
  let m : Mach.Machine.t = machine in
  let banks = m.clusters in
  let ops = Array.of_list (Ir.Loop.ops loop) in
  let n = Array.length ops in
  if Mach.Machine.is_monolithic m then
    { loop; assignment; n_copies = 0; copies_per_cluster = [| 0 |];
      ops_per_cluster = [| n |] }
  else begin
    (* Positions (not op ids) of defs per register. *)
    let defs_of =
      let acc = ref Ir.Vreg.Map.empty in
      Array.iteri
        (fun i op ->
          List.iter
            (fun d ->
              let prev = Option.value ~default:[] (Ir.Vreg.Map.find_opt d !acc) in
              acc := Ir.Vreg.Map.add d (prev @ [ i ]) !acc)
            (Ir.Op.defs op))
        ops;
      !acc
    in
    let next_vreg = ref (Ir.Loop.max_vreg_id loop + 1) in
    let next_op = ref (Ir.Loop.max_op_id loop + 1) in
    let extra_assign = ref [] in
    let reaching_string = function
      | Invariant -> "invariant"
      | Carried -> "carried"
      | Same_iter p -> Printf.sprintf "op%d" (Ir.Op.id ops.(p))
    in
    (* (reg id, cluster, reaching) -> (copy op, copy dst) *)
    let cache : (int * int * reaching, Ir.Op.t * Ir.Vreg.t) Hashtbl.t = Hashtbl.create 16 in
    let get_copy r cluster reaching =
      let key = (Ir.Vreg.id r, cluster, reaching) in
      match Hashtbl.find_opt cache key with
      | Some (_, dst) -> dst
      | None ->
          let dst =
            Ir.Vreg.make ~name:(copy_name r cluster) ~id:!next_vreg ~cls:(Ir.Vreg.cls r) ()
          in
          incr next_vreg;
          let cop =
            Ir.Op.make ~dst ~srcs:[ r ] ~id:!next_op ~opcode:Mach.Opcode.Copy
              ~cls:(Ir.Vreg.cls r) ()
          in
          incr next_op;
          extra_assign := (dst, cluster) :: !extra_assign;
          Hashtbl.add cache key (cop, dst);
          if obs <> None then
            Obs.Trace.emit obs
              (Obs.Events.Copy_route
                 {
                   reg = Ir.Vreg.to_string r;
                   copy = Ir.Vreg.to_string dst;
                   src_bank = Assign.bank assignment r;
                   dst_bank = cluster;
                   reaching = reaching_string reaching;
                 });
          dst
    in
    (* Pass 1: create all copies and record per-use rewrites. *)
    let rewrites = Array.make n Ir.Vreg.Map.empty in
    Array.iteri
      (fun q op ->
        let cluster = Assign.cluster_of_op assignment op in
        if not (Mach.Machine.valid_cluster m cluster) then
          invalid_arg "Copies.insert_loop: assignment names an out-of-range bank";
        List.iter
          (fun r ->
            if Assign.bank assignment r <> cluster then begin
              let reaching = classify ~defs_of r q in
              let dst = get_copy r cluster reaching in
              rewrites.(q) <- Ir.Vreg.Map.add r dst rewrites.(q)
            end)
          (Ir.Op.uses op))
      ops;
    (* Pass 2: emit — header copies first, then each op preceded by
       nothing and followed by the copies anchored to its position. *)
    let header = ref [] in
    let after = Array.make n [] in
    Hashtbl.iter
      (fun (_, _, reaching) (cop, _) ->
        match reaching with
        | Invariant | Carried -> header := cop :: !header
        | Same_iter p -> after.(p) <- cop :: after.(p))
      cache;
    let sort_ops = List.sort (fun a b -> Int.compare (Ir.Op.id a) (Ir.Op.id b)) in
    let body = ref [] in
    List.iter (fun c -> body := c :: !body) (sort_ops !header);
    Array.iteri
      (fun q op ->
        body := Ir.Op.substitute op rewrites.(q) :: !body;
        List.iter (fun c -> body := c :: !body) (sort_ops after.(q)))
      ops;
    let new_ops = List.rev !body in
    let assignment =
      List.fold_left (fun acc (r, b) -> Ir.Vreg.Map.add r b acc) assignment !extra_assign
    in
    let copies_per_cluster = Array.make banks 0 in
    let ops_per_cluster = Array.make banks 0 in
    List.iter
      (fun op ->
        let c = Assign.cluster_of_op assignment op in
        if Ir.Op.is_copy op then copies_per_cluster.(c) <- copies_per_cluster.(c) + 1
        else ops_per_cluster.(c) <- ops_per_cluster.(c) + 1)
      new_ops;
    {
      loop = Ir.Loop.with_ops loop new_ops;
      assignment;
      n_copies = Hashtbl.length cache;
      copies_per_cluster;
      ops_per_cluster;
    }
  end

let insert_block ~machine ~assignment ~fresh_vreg ~fresh_op block =
  let m : Mach.Machine.t = machine in
  if Mach.Machine.is_monolithic m then (block, assignment, 0)
  else begin
    let ops = Array.of_list (Ir.Block.ops block) in
    let n = Array.length ops in
    let defs_of =
      let acc = ref Ir.Vreg.Map.empty in
      Array.iteri
        (fun i op ->
          List.iter
            (fun d ->
              let prev = Option.value ~default:[] (Ir.Vreg.Map.find_opt d !acc) in
              acc := Ir.Vreg.Map.add d (prev @ [ i ]) !acc)
            (Ir.Op.defs op))
        ops;
      !acc
    in
    let next_vreg = ref fresh_vreg in
    let next_op = ref fresh_op in
    let assignment = ref assignment in
    let cache = Hashtbl.create 16 in
    let get_copy r cluster reaching =
      let key = (Ir.Vreg.id r, cluster, reaching) in
      match Hashtbl.find_opt cache key with
      | Some (_, dst) -> dst
      | None ->
          let dst =
            Ir.Vreg.make ~name:(copy_name r cluster) ~id:!next_vreg ~cls:(Ir.Vreg.cls r) ()
          in
          incr next_vreg;
          let cop =
            Ir.Op.make ~dst ~srcs:[ r ] ~id:!next_op ~opcode:Mach.Opcode.Copy
              ~cls:(Ir.Vreg.cls r) ()
          in
          incr next_op;
          assignment := Ir.Vreg.Map.add dst cluster !assignment;
          Hashtbl.add cache key (cop, dst);
          dst
    in
    let rewrites = Array.make n Ir.Vreg.Map.empty in
    Array.iteri
      (fun q op ->
        let cluster = Assign.cluster_of_op !assignment op in
        List.iter
          (fun r ->
            if Assign.bank !assignment r <> cluster then begin
              let reaching =
                match classify ~defs_of r q with
                | Invariant | Carried -> Invariant (* blocks have no carried values *)
                | Same_iter p -> Same_iter p
              in
              let dst = get_copy r cluster reaching in
              rewrites.(q) <- Ir.Vreg.Map.add r dst rewrites.(q)
            end)
          (Ir.Op.uses op))
      ops;
    let header = ref [] in
    let after = Array.make n [] in
    Hashtbl.iter
      (fun (_, _, reaching) (cop, _) ->
        match reaching with
        | Invariant | Carried -> header := cop :: !header
        | Same_iter p -> after.(p) <- cop :: after.(p))
      cache;
    let sort_ops = List.sort (fun a b -> Int.compare (Ir.Op.id a) (Ir.Op.id b)) in
    let body = ref [] in
    List.iter (fun c -> body := c :: !body) (sort_ops !header);
    Array.iteri
      (fun q op ->
        body := Ir.Op.substitute op rewrites.(q) :: !body;
        List.iter (fun c -> body := c :: !body) (sort_ops after.(q)))
      ops;
    ( Ir.Block.make ~depth:(Ir.Block.depth block) ~label:(Ir.Block.label block)
        (List.rev !body),
      !assignment,
      Hashtbl.length cache )
  end
