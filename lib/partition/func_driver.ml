type block_result = {
  label : string;
  depth : int;
  ideal_len : int;
  clustered_len : int;
  n_copies : int;
}

type result = {
  func : Ir.Func.t;
  machine : Mach.Machine.t;
  blocks : block_result list;
  assignment : Assign.t;
  rewritten : Ir.Func.t;
  n_copies : int;
  ideal_cycles : float;
  clustered_cycles : float;
  degradation : float;
}

let weight_of_depth depth = 10.0 ** float_of_int depth

let pipeline ?obs ?(weights = Rcg.Weights.default) ?(verify = false) ~machine func =
  let m : Mach.Machine.t = machine in
  Obs.Trace.span obs "func.pipeline"
    ~attrs:[ ("func", Ir.Func.name func); ("machine", m.Mach.Machine.name) ]
  @@ fun () ->
  let rcg =
    Obs.Trace.span obs "rcg.build" (fun () -> Rcg.Build.of_func ~weights ~machine:m func)
  in
  let assignment0 =
    if Mach.Machine.is_monolithic m then
      Assign.of_list (List.map (fun r -> (r, 0)) (Ir.Vreg.Set.elements (Ir.Func.vregs func)))
    else Greedy.partition ?obs ~weights ~banks:m.clusters rcg
  in
  (* Registers appearing only in empty-block corner cases park in 0. *)
  let assignment0 =
    Ir.Vreg.Set.fold
      (fun r acc -> if Ir.Vreg.Map.mem r acc then acc else Ir.Vreg.Map.add r 0 acc)
      (Ir.Func.vregs func) assignment0
  in
  let next_vreg = ref (1 + Ir.Vreg.Set.fold (fun r a -> max a (Ir.Vreg.id r))
                         (Ir.Func.vregs func) 0)
  in
  let next_op =
    ref
      (1
      + List.fold_left
          (fun acc b ->
            List.fold_left (fun acc op -> max acc (Ir.Op.id op)) acc (Ir.Block.ops b))
          0 (Ir.Func.blocks func))
  in
  let assignment = ref assignment0 in
  let results = ref [] in
  let rewritten_blocks = ref [] in
  let total_copies = ref 0 in
  let error = ref None in
  List.iter
    (fun block ->
      if !error = None then
        Obs.Trace.span obs "func.block"
          ~attrs:
            [ ("label", Ir.Block.label block);
              ("depth", string_of_int (Ir.Block.depth block)) ]
        @@ fun () ->
        if Ir.Block.ops block = [] then begin
          rewritten_blocks := block :: !rewritten_blocks;
          results :=
            { label = Ir.Block.label block; depth = Ir.Block.depth block; ideal_len = 0;
              clustered_len = 0; n_copies = 0 }
            :: !results
        end
        else begin
          let ddg = Ddg.Graph.of_block ~latency:m.latency block in
          let ideal = Sched.List_sched.ideal ~machine:m ddg in
          match
            Copies.insert_block ~machine:m ~assignment:!assignment ~fresh_vreg:!next_vreg
              ~fresh_op:!next_op block
          with
          | exception Invalid_argument msg ->
              error :=
                Some
                  (Verify.Stage_error.make ~stage:Verify.Stage_error.Copy_insertion
                     ~subject:(Ir.Func.name func)
                     (Printf.sprintf "block %s: %s" (Ir.Block.label block) msg))
          | block', assignment', n ->
          assignment := assignment';
          next_vreg := !next_vreg + n;
          next_op := !next_op + n;
          total_copies := !total_copies + n;
          let ddg' = Ddg.Graph.of_block ~latency:m.latency block' in
          let tbl = Hashtbl.create 32 in
          List.iter
            (fun op ->
              Hashtbl.replace tbl (Ir.Op.id op) (Assign.cluster_of_op !assignment op))
            (Ir.Block.ops block');
          let cluster_of id = Hashtbl.find tbl id in
          match Sched.List_sched.schedule ~cluster_of ~machine:m ddg' with
          | sched ->
              rewritten_blocks := block' :: !rewritten_blocks;
              results :=
                { label = Ir.Block.label block; depth = Ir.Block.depth block;
                  ideal_len = Sched.Schedule.issue_length ideal;
                  clustered_len = Sched.Schedule.issue_length sched; n_copies = n }
                :: !results
          | exception Invalid_argument msg ->
              error :=
                Some
                  (Verify.Stage_error.make ~stage:Verify.Stage_error.Clustered_schedule
                     ~subject:(Ir.Func.name func)
                     (Printf.sprintf "block %s: %s" (Ir.Block.label block) msg))
        end)
    (Ir.Func.blocks func);
  match !error with
  | Some e -> Error e
  | None ->
      let blocks = List.rev !results in
      let weighted f =
        List.fold_left (fun acc b -> acc +. (weight_of_depth b.depth *. float_of_int (f b)))
          0.0 blocks
      in
      let ideal_cycles = weighted (fun b -> b.ideal_len) in
      let clustered_cycles = weighted (fun b -> b.clustered_len) in
      let rewritten =
        Ir.Func.make ~name:(Ir.Func.name func) ~blocks:(List.rev !rewritten_blocks)
          ~edges:(Ir.Func.edges func)
      in
      (* Optional self-check: every rewritten block must be bank-local
         with well-formed copies under the final global assignment. *)
      let verification =
        if not verify then Ok ()
        else
          let diags =
            List.concat_map
              (fun b ->
                Verify.Partition_check.check_block ~machine:m ~assignment:!assignment b)
              (Ir.Func.blocks rewritten)
          in
          if Verify.Diag.has_errors diags then
            Error (Verify.Stage_error.of_diags ~subject:(Ir.Func.name func) diags)
          else Ok ()
      in
      match verification with
      | Error e -> Error e
      | Ok () ->
      Ok
        {
          func; machine = m; blocks; assignment = !assignment; rewritten;
          n_copies = !total_copies; ideal_cycles; clustered_cycles;
          degradation =
            (if ideal_cycles <= 0.0 then 100.0 else 100.0 *. clustered_cycles /. ideal_cycles);
        }
