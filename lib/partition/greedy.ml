let benefit ~balance_penalty ~placed ~counts g node bank =
  let from_edges =
    List.fold_left
      (fun acc (m, w) -> if placed m = Some bank then acc +. w else acc)
      0.0
      (Rcg.Graph.neighbors g node)
  in
  from_edges -. (balance_penalty *. float_of_int counts.(bank))

let partition ?obs ?(weights = Rcg.Weights.default) ~banks g =
  if banks < 1 then invalid_arg "Greedy.partition: banks must be >= 1";
  let n = Rcg.Graph.node_count g in
  Obs.Trace.span obs "greedy.partition"
    ~attrs:[ ("nodes", string_of_int n); ("banks", string_of_int banks) ]
  @@ fun () ->
  let expected_per_bank = max 1.0 (float_of_int n /. float_of_int banks) in
  let mean_edge = Rcg.Graph.mean_positive_edge_weight g in
  let balance_penalty = weights.Rcg.Weights.balance *. mean_edge /. expected_per_bank in
  let traced = obs <> None in
  if traced then
    Obs.Trace.emit obs
      (Obs.Events.Greedy_penalty { penalty = balance_penalty; mean_edge; nodes = n; banks });
  let assignment = Hashtbl.create n in
  let counts = Array.make banks 0 in
  let placed r = Hashtbl.find_opt assignment (Ir.Vreg.id r) in
  let place r b =
    Hashtbl.replace assignment (Ir.Vreg.id r) b;
    counts.(b) <- counts.(b) + 1
  in
  List.iter
    (fun node ->
      match Rcg.Graph.pinned g node with
      | Some b ->
          if b < 0 || b >= banks then
            invalid_arg
              (Printf.sprintf "Greedy.partition: %s pinned to bank %d (of %d)"
                 (Ir.Vreg.to_string node) b banks);
          Obs.Trace.incr obs Obs.Counter.Greedy_pinned 1;
          if traced then
            Obs.Trace.emit obs
              (Obs.Events.Greedy_place
                 {
                   node = Ir.Vreg.to_string node;
                   bank = b;
                   benefit = 0.0;
                   benefits = [];
                   ties = [];
                   pinned = true;
                 });
          place node b
      | None ->
          let best = ref 0 in
          let best_benefit = ref neg_infinity in
          let ties = ref 1 in
          let benefits = Array.make banks 0.0 in
          for b = 0 to banks - 1 do
            let v = benefit ~balance_penalty ~placed ~counts g node b in
            benefits.(b) <- v;
            if v > !best_benefit then begin
              best_benefit := v;
              best := b;
              ties := 1
            end
            else if v = !best_benefit then incr ties
          done;
          Obs.Trace.incr obs Obs.Counter.Greedy_decisions 1;
          if !ties > 1 then Obs.Trace.incr obs Obs.Counter.Greedy_tie_breaks 1;
          if traced then begin
            let tied =
              if !ties > 1 then
                List.filter
                  (fun b -> benefits.(b) = !best_benefit)
                  (List.init banks Fun.id)
              else []
            in
            Obs.Trace.emit obs
              (Obs.Events.Greedy_place
                 {
                   node = Ir.Vreg.to_string node;
                   bank = !best;
                   benefit = !best_benefit;
                   benefits = Array.to_list benefits;
                   ties = tied;
                   pinned = false;
                 })
          end;
          place node !best)
    (Rcg.Graph.by_weight_desc g);
  Assign.of_list
    (List.map (fun r -> (r, Hashtbl.find assignment (Ir.Vreg.id r))) (Rcg.Graph.registers g))
