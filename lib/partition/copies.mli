(** Cross-bank copy insertion (step 4 of the paper's framework).

    Given a bank assignment, every operation executes on its destination's
    cluster; each source register living in a different bank must first be
    copied into a fresh register of the consuming cluster. One copy per
    (source register, consuming cluster, reaching value) is inserted and
    shared by all consumers of that value in that cluster.

    Placement in the rewritten body:
    - copies of loop invariants and of loop-carried values go to the top
      of the body (a carried copy placed before the register's first
      in-body definition reads the previous iteration's value, which is
      exactly what its consumers consumed before rewriting);
    - copies of in-body values are placed immediately after the defining
      operation.

    The rewritten body is ordinary IR: rebuilding the DDG over it yields
    all copy dependences with no special cases, and the clustered modulo
    scheduler runs unchanged. *)

type result = {
  loop : Ir.Loop.t;              (** body with copies spliced in *)
  assignment : Assign.t;         (** input assignment + copy destinations *)
  n_copies : int;
  copies_per_cluster : int array;(** arriving copies per cluster *)
  ops_per_cluster : int array;   (** non-copy ops per cluster *)
}

val insert_loop :
  ?obs:Obs.Trace.t -> machine:Mach.Machine.t -> assignment:Assign.t -> Ir.Loop.t -> result
(** Raises [Invalid_argument] if the assignment misses a register of the
    loop or names an out-of-range bank. On a monolithic machine the loop
    is returned unchanged. With [?obs] each inserted copy becomes an
    {!Obs.Events.Copy_route} event recording the def/use bank pair and
    which reaching value ([invariant], [carried] or [op<ID>]) it
    forwards. *)

val insert_block :
  machine:Mach.Machine.t ->
  assignment:Assign.t ->
  fresh_vreg:int ->
  fresh_op:int ->
  Ir.Block.t ->
  Ir.Block.t * Assign.t * int
(** Straight-line variant for the whole-function path: copies of values
    defined earlier in the block follow their definition; values entering
    the block are copied at block start. [fresh_vreg]/[fresh_op] seed new
    ids (caller keeps them unique across the function). Returns the
    rewritten block, the extended assignment and the number of copies. *)
