(** End-to-end code generation for one software-pipelined loop — the
    five-step framework of Section 4:

    1. intermediate code over an infinite register file (the input loop);
    2. DDG + ideal modulo schedule on the monolithic machine;
    3. register partitioning (greedy RCG by default; BUG/UAS baselines);
    4. copy insertion, DDG rebuild, clustered modulo rescheduling;
    5. (separately, see [Regalloc]) per-bank Chaitin/Briggs colouring.

    Degradation is achieved-II over ideal-II, normalized to 100 as in the
    paper's Table 2. *)

type partitioner =
  | Greedy of Rcg.Weights.t  (** the paper's method *)
  | Bug
  | Uas
  | Custom of (Mach.Machine.t -> Ddg.Graph.t -> Rcg.Graph.t option -> Assign.t)
      (** receives the target machine, the loop DDG and (for RCG-based
          methods) the built RCG *)

type result = {
  loop : Ir.Loop.t;                 (** original body *)
  machine : Mach.Machine.t;
  ideal : Sched.Modulo.outcome;     (** monolithic pipeline *)
  clustered : Sched.Modulo.outcome; (** partitioned pipeline (with copies) *)
  assignment : Assign.t;            (** final banks incl. copy registers *)
  rewritten : Ir.Loop.t;            (** body with copies *)
  n_copies : int;
  degradation : float;   (** 100 · II_clustered / II_ideal (100 = none) *)
  ipc_ideal : float;     (** ops / II on the ideal pipeline *)
  ipc_clustered : float;
      (** kernel ops / II; copies count under the embedded model and are
          excluded under the copy-unit model, as in Table 1 *)
}

type scheduler = Rau | Swing
(** Which modulo scheduler drives both the ideal and the clustered
    pipelines: Rau's iterative scheme (the paper's) or Swing
    (lifetime-sensitive; what Nystrom & Eichenberger use). *)

val partitioner_name : partitioner -> string
(** ["greedy"], ["bug"], ["uas"] or ["custom"] — the label tracing and
    reports use. *)

val deadline_code : string
(** ["PIPE008"] — the code a fired [cancel] token surfaces as, the same
    code the resilient ladder in [lib/robust] uses. *)

val pipeline :
  ?obs:Obs.Trace.t ->
  ?cancel:(unit -> bool) ->
  ?partitioner:partitioner ->
  ?scheduler:scheduler ->
  ?budget_ratio:int ->
  ?verify:bool ->
  machine:Mach.Machine.t ->
  Ir.Loop.t ->
  (result, Verify.Stage_error.t) Stdlib.result
(** Runs the whole framework. [partitioner] defaults to
    [Greedy Rcg.Weights.default], [scheduler] to [Rau]. [cancel]
    (default never) is polled at every stage boundary — typically
    {!Engine.Cancel.guard} of a deadline token; once it fires the
    pipeline stops cooperatively with an [Error] carrying
    {!deadline_code} at the stage it was about to enter. Failures are
    reported as structured {!Verify.Stage_error} values naming the
    framework stage and a diagnostic code — never raised, including on
    malformed assignments (unassigned registers, out-of-range banks)
    coming out of a [Custom] partitioner. On a monolithic machine the
    "clustered" leg equals the ideal one and degradation is 100.

    [verify] (default false) re-checks every stage artifact with the
    independent {!Verify} analyzers — ideal and clustered kernels
    against their DDGs and machine resources, operand bank-locality and
    copy well-formedness of the rewritten body — and turns any
    error-severity diagnostic into an [Error].

    [obs] (default off) traces the Section-4 stages as a span tree —
    one [pipeline] root per call with [ddg.build], [schedule.ideal],
    [partition] (and [rcg.build] / [greedy.partition] inside it),
    [copies.insert], [ddg.rebuild], [schedule.clustered] and (under
    [~verify]) [verify] children — and feeds the scheduler, greedy and
    [copies.inserted{SRC->DST}] counters plus the
    [sched.clustered_mii] gauge. With no context every probe is one
    branch and behaviour is unchanged. *)

val choose_partition :
  ?obs:Obs.Trace.t ->
  partitioner ->
  machine:Mach.Machine.t ->
  ddg:Ddg.Graph.t ->
  ideal_kernel:Sched.Kernel.t ->
  depth:int ->
  Assign.t
(** Run just the partitioning step (step 3) the way [pipeline] would:
    RCG-based methods build their graph from the ideal kernel. Exposed
    for the resilient ladder driver in [lib/robust], which retries with
    different partitioners. May raise [Invalid_argument] for malformed
    inputs (callers turn that into a {!Verify.Stage_error}). *)

val cluster_map : Assign.t -> Ir.Loop.t -> (int -> int, string) Stdlib.result
(** [cluster_map assignment loop] is the op-id -> cluster function the
    schedulers consume. Returns [Error] (naming the register) when the
    assignment misses a register of the body, so malformed assignments
    are rejected before scheduling rather than raising mid-schedule.
    The returned function raises [Invalid_argument] on op ids not in
    [loop] — an internal invariant, since schedulers only query ids of
    the DDG built from this same body. *)
