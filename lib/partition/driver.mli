(** End-to-end code generation for one software-pipelined loop — the
    five-step framework of Section 4:

    1. intermediate code over an infinite register file (the input loop);
    2. DDG + ideal modulo schedule on the monolithic machine;
    3. register partitioning (greedy RCG by default; BUG/UAS baselines);
    4. copy insertion, DDG rebuild, clustered modulo rescheduling;
    5. (separately, see [Regalloc]) per-bank Chaitin/Briggs colouring.

    Degradation is achieved-II over ideal-II, normalized to 100 as in the
    paper's Table 2. *)

type partitioner =
  | Greedy of Rcg.Weights.t  (** the paper's method *)
  | Bug
  | Uas
  | Custom of (Mach.Machine.t -> Ddg.Graph.t -> Rcg.Graph.t option -> Assign.t)
      (** receives the target machine, the loop DDG and (for RCG-based
          methods) the built RCG *)

type result = {
  loop : Ir.Loop.t;                 (** original body *)
  machine : Mach.Machine.t;
  ideal : Sched.Modulo.outcome;     (** monolithic pipeline *)
  clustered : Sched.Modulo.outcome; (** partitioned pipeline (with copies) *)
  assignment : Assign.t;            (** final banks incl. copy registers *)
  rewritten : Ir.Loop.t;            (** body with copies *)
  n_copies : int;
  degradation : float;   (** 100 · II_clustered / II_ideal (100 = none) *)
  ipc_ideal : float;     (** ops / II on the ideal pipeline *)
  ipc_clustered : float;
      (** kernel ops / II; copies count under the embedded model and are
          excluded under the copy-unit model, as in Table 1 *)
}

type scheduler = Rau | Swing
(** Which modulo scheduler drives both the ideal and the clustered
    pipelines: Rau's iterative scheme (the paper's) or Swing
    (lifetime-sensitive; what Nystrom & Eichenberger use). *)

val pipeline :
  ?partitioner:partitioner ->
  ?scheduler:scheduler ->
  ?budget_ratio:int ->
  ?verify:bool ->
  machine:Mach.Machine.t ->
  Ir.Loop.t ->
  (result, string) Stdlib.result
(** Runs the whole framework. [partitioner] defaults to
    [Greedy Rcg.Weights.default], [scheduler] to [Rau]. Errors (ideal or
    clustered scheduling failure) are reported, never raised. On a
    monolithic machine the "clustered" leg equals the ideal one and
    degradation is 100.

    [verify] (default false) re-checks every stage artifact with the
    independent {!Verify} analyzers — ideal and clustered kernels
    against their DDGs and machine resources, operand bank-locality and
    copy well-formedness of the rewritten body — and turns any
    error-severity diagnostic into an [Error]. *)

val cluster_map : Assign.t -> Ir.Loop.t -> int -> int
(** [cluster_map assignment loop] is the op-id -> cluster function the
    schedulers consume. Raises [Not_found] on unknown op ids. *)
