exception Cancelled

type t = {
  flag : bool Atomic.t;
  deadline : float option;
  clock : unit -> float;
}

let make ?deadline ~clock () = { flag = Atomic.make false; deadline; clock }
let never = { flag = Atomic.make false; deadline = None; clock = (fun () -> 0.0) }
let cancel t = Atomic.set t.flag true

let cancelled t =
  Atomic.get t.flag
  ||
  match t.deadline with
  | None -> false
  | Some d ->
      if t.clock () >= d then begin
        (* Latch: once a deadline has passed it stays passed, even for
           callers holding a clock that could (in tests) run backwards. *)
        Atomic.set t.flag true;
        true
      end
      else false

let guard t () = cancelled t

let remaining t =
  match t.deadline with
  | None -> None
  | Some d -> Some (d -. t.clock ())

let check t = if cancelled t then raise Cancelled
