let default_jobs () = Domain.recommended_domain_count ()

type deque = {
  arr : int array;        (* task indices; fixed after construction *)
  mutable top : int;      (* next slot a thief takes *)
  mutable bottom : int;   (* one past the next slot the owner takes *)
  lock : Mutex.t;
}

let pop d =
  Mutex.lock d.lock;
  let r =
    if d.top < d.bottom then begin
      d.bottom <- d.bottom - 1;
      Some d.arr.(d.bottom)
    end
    else None
  in
  Mutex.unlock d.lock;
  r

let steal d =
  Mutex.lock d.lock;
  let r =
    if d.top < d.bottom then begin
      let v = d.arr.(d.top) in
      d.top <- d.top + 1;
      Some v
    end
    else None
  in
  Mutex.unlock d.lock;
  r

let run ?(cancel = Cancel.never) ~jobs (tasks : (unit -> 'a) array) :
    ('a, exn) result array =
  let n = Array.length tasks in
  let exec i =
    (* One poll per task: a batch abandoned mid-run drains its remaining
       tasks as [Error Cancelled] instead of computing them. Tasks that
       want finer-grained unwinding poll the same token themselves. *)
    if Cancel.cancelled cancel then Error Cancel.Cancelled
    else try Ok (tasks.(i) ()) with e -> Error e
  in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    if jobs = 1 then begin
      (* The serial fallback: calling domain, submission order, no pool
         machinery at all. *)
      let out = Array.make n None in
      for i = 0 to n - 1 do
        out.(i) <- Some (exec i)
      done;
      Array.map Option.get out
    end
    else begin
      let results = Array.make n None in
      let deques =
        Array.init jobs (fun k ->
            let lo = k * n / jobs and hi = (k + 1) * n / jobs in
            {
              arr = Array.init (hi - lo) (fun i -> lo + i);
              top = 0;
              bottom = hi - lo;
              lock = Mutex.create ();
            })
      in
      let rec next_task k =
        match pop deques.(k) with
        | Some i -> Some i
        | None ->
            (* Steal scan: victims in round-robin order from our right
               neighbour. Tasks are only ever removed, so finding every
               deque empty is a stable termination condition. *)
            let rec scan step =
              if step >= jobs then None
              else
                match steal deques.((k + step) mod jobs) with
                | Some i -> Some i
                | None -> scan (step + 1)
            in
            scan 1
      and worker k =
        match next_task k with
        | None -> ()
        | Some i ->
            results.(i) <- Some (exec i);
            worker k
      in
      let others = Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
      worker 0;
      Array.iter Domain.join others;
      (* Every join happened-before this read, so the slots written by
         other domains are visible; every slot was claimed exactly once. *)
      Array.map (function Some r -> r | None -> assert false) results
    end
  end
