(** Cooperative cancellation tokens.

    A token combines an explicit cancel flag with an optional wall-clock
    deadline. Work that must never outlive its caller — a pipeline run
    answering a network request, a pool task whose batch was abandoned —
    polls the token at stage boundaries and unwinds {e cooperatively}:
    nothing is killed, the job simply declines to start its next stage.
    That is the only cancellation OCaml domains can offer, and it is the
    right one for a compiler: every abandoned artifact is a value, so
    there is nothing to clean up and no partial state escapes.

    Tokens are domain-safe: [cancel] may be called from any thread or
    domain while a worker polls [cancelled] from another. Once a token
    reports cancelled it stays cancelled (deadline hits are latched). *)

exception Cancelled
(** Raised by {!check}; also the [Error] payload {!Pool.run} records for
    tasks skipped because the batch token fired. *)

type t

val make : ?deadline:float -> clock:(unit -> float) -> unit -> t
(** [deadline] is an absolute reading of [clock] (compare:
    [clock () +. budget_s]); the token reports cancelled once
    [clock ()] reaches it. With no deadline the token only cancels
    explicitly. *)

val never : t
(** A token that never cancels — the default everywhere. *)

val cancel : t -> unit
(** Idempotent; safe from any domain. *)

val cancelled : t -> bool

val guard : t -> unit -> bool
(** [guard t] as a polling closure — the shape drivers accept so they
    need not depend on this module's [t]. *)

val remaining : t -> float option
(** Seconds until the deadline (negative once passed); [None] when the
    token has no deadline. *)

val check : t -> unit
(** Raise {!Cancelled} if the token fired. For call sites structured
    around exceptions; drivers in this codebase poll instead. *)
