type t = { dir : string }

let default_dir = "_rbp_cache"
let dir t = t.dir
let open_ ?(dir = default_dir) () = { dir }

(* Two-level fan-out: 256 buckets keeps directories small even for a
   full-suite sweep per machine config. *)
let path_of t key =
  let bucket = String.sub key 0 (min 2 (String.length key)) in
  let rest = String.sub key (min 2 (String.length key)) (max 0 (String.length key - 2)) in
  Filename.concat (Filename.concat t.dir bucket) (rest ^ ".json")

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Some s

(* Entries are wrapped in an integrity envelope
   [{"sum": md5(payload bytes), "payload": ...}]. Content addressing
   guarantees an entry can never be the answer to the wrong question,
   but not that its bytes survived the disk: a truncated or bit-flipped
   file could otherwise still parse as JSON and decode into a wrong
   result. The digest is over the canonical serialization of the
   payload, so any flip that survives the parser either changes the
   re-serialized bytes (digest mismatch) or the envelope shape — both
   degrade to a miss, counted on [engine.cache_corrupt]. *)
let envelope payload =
  let body = Obs.Json.to_string payload in
  Obs.Json.Obj
    [ ("sum", Obs.Json.Str (Digest.to_hex (Digest.string body))); ("payload", payload) ]

let unseal j =
  match (Obs.Json.member "sum" j, Obs.Json.member "payload" j) with
  | Some (Obs.Json.Str sum), Some payload
    when String.equal sum (Digest.to_hex (Digest.string (Obs.Json.to_string payload))) ->
      Some payload
  | _ -> None

let find ?obs t ~key =
  match read_file (path_of t key) with
  | None -> None
  | Some text -> (
      let corrupt () =
        Obs.Trace.incr obs Obs.Counter.Engine_cache_corrupt 1;
        None
      in
      match Obs.Json.of_string text with
      | Error _ -> corrupt ()
      | Ok j -> ( match unseal j with Some payload -> Some payload | None -> corrupt ()))

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let store t ~key json =
  let path = path_of t key in
  try
    mkdir_p (Filename.dirname path);
    let tmp = Filename.temp_file ~temp_dir:(Filename.dirname path) "entry" ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc (Obs.Json.to_string (envelope json));
    output_char oc '\n';
    close_out oc;
    Sys.rename tmp path
  with Sys_error _ -> ()

type stats = { entries : int; bytes : int }

let iter_entries dir f =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun bucket ->
        let bdir = Filename.concat dir bucket in
        if Sys.is_directory bdir then
          Array.iter
            (fun file ->
              if Filename.check_suffix file ".json" then f (Filename.concat bdir file))
            (Sys.readdir bdir))
      (Sys.readdir dir)

let stat ?(dir = default_dir) () =
  let entries = ref 0 and bytes = ref 0 in
  iter_entries dir (fun path ->
      incr entries;
      match open_in_bin path with
      | exception Sys_error _ -> ()
      | ic ->
          bytes := !bytes + in_channel_length ic;
          close_in ic);
  { entries = !entries; bytes = !bytes }

let clear ?(dir = default_dir) () =
  let removed = ref 0 in
  iter_entries dir (fun path ->
      try
        Sys.remove path;
        incr removed
      with Sys_error _ -> ());
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun bucket ->
        let bdir = Filename.concat dir bucket in
        if Sys.is_directory bdir && Array.length (Sys.readdir bdir) = 0 then
          try Sys.rmdir bdir with Sys_error _ -> ())
      (Sys.readdir dir);
  !removed
