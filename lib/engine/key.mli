(** Stable content-addressed cache keys.

    A key is the hex digest of an unambiguous encoding of labelled
    fingerprint parts plus {!version_salt}. Two keys are equal exactly
    when every part is equal (up to digest collision, which the qcheck
    suite treats as impossible in practice): each part is
    length-prefixed, so no concatenation of distinct part lists can
    produce the same encoding.

    Callers build the parts from {e content}, never from file names or
    timestamps: the loop IR text, the machine description, the pipeline
    options. Anything that changes the pipeline's answer must appear in
    some part — or in the salt. *)

val version_salt : string
(** Folded into every key. Bump this string whenever the pipeline's
    observable results change (scheduler tweaks, new copy heuristics,
    metric definition changes): every existing cache entry then misses,
    which is the correct, conservative invalidation. *)

val encode : (string * string) list -> string
(** The injective pre-digest encoding (exposed for the collision
    property tests): [salt] then each [(label, value)] pair with both
    components length-prefixed. *)

val make : (string * string) list -> string
(** [make parts] is the hex MD5 digest of [encode parts] — 32 lowercase
    hex characters, safe as a file name. *)
