(** Work-stealing domain pool for embarrassingly parallel job batches.

    [run ~jobs tasks] evaluates every task and returns their outcomes
    {e in submission order} — parallelism never reorders results, which
    is what lets every consumer (suite metrics, stress reports, bench
    telemetry) stay byte-identical across [-j] levels.

    Scheduling: the task indices are dealt into one deque per worker in
    contiguous chunks; each worker pops from the bottom of its own
    deque and, when empty, steals from the top of the others
    (round-robin scan). Chunked dealing keeps cache-warm neighbours
    together; stealing keeps the pool busy when loop compile times are
    skewed, which they heavily are (generated loops range from 3 to
    ~50 ops). Deques are mutex-guarded — at whole-loop-compilation
    granularity the lock is nanoseconds against milliseconds of work.

    Fault isolation: a task that raises marks {e its own} slot with
    [Error exn]; the other tasks and the pool itself are unaffected.

    [jobs <= 1] (or a single task) runs everything on the calling
    domain, in order, with no domain spawned and no deque built — the
    exact serial path, so [-j 1] is a true fallback and not merely a
    one-worker pool. *)

val run :
  ?cancel:Cancel.t -> jobs:int -> (unit -> 'a) array -> ('a, exn) result array
(** [jobs] is clamped to [1 .. Array.length tasks]. Tasks must not
    assume anything about which domain runs them; anything they share
    must be immutable or externally synchronized (see DESIGN.md §11 for
    the audit of what the pipeline shares: nothing mutable).

    [cancel] (default {!Cancel.never}) is polled once before each task
    starts: once the token fires, every not-yet-started task completes
    as [Error Cancel.Cancelled] without running. Tasks already running
    are not interrupted — cooperative cancellation inside a task is the
    task's own business (thread the same token into its work). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — one worker per available
    core, the [-j 0] / unset default everywhere. *)
