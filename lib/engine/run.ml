type 'a codec = { encode : 'a -> Obs.Json.t; decode : Obs.Json.t -> 'a option }
type 'a job = { key : string option; work : Obs.Trace.t option -> 'a }

type stats = { jobs : int; hits : int; misses : int; executed : int; stored : int }

let map ?cache ?codec ?obs ?job_clock ~jobs (js : 'a job array) =
  let n = Array.length js in
  let jobs = if jobs <= 0 then Pool.default_jobs () else jobs in
  let jobs = max 1 (min jobs (max 1 n)) in
  let results : ('a, exn) result option array = Array.make n None in
  let hits = ref 0 and misses = ref 0 and stored = ref 0 in
  (* Phase 1: cache probe — submitting domain, submission order. *)
  (match (cache, codec) with
  | Some c, Some cd ->
      for i = 0 to n - 1 do
        match js.(i).key with
        | None -> ()
        | Some key -> (
            match Cache.find ?obs c ~key with
            | None -> incr misses
            | Some j -> (
                match cd.decode j with
                | Some v ->
                    incr hits;
                    results.(i) <- Some (Ok v)
                | None ->
                    (* The envelope checked out but the payload is not a
                       value of this codec — same verdict as a corrupt
                       file: degrade to a miss and recompute. *)
                    Obs.Trace.incr obs Obs.Counter.Engine_cache_corrupt 1;
                    incr misses))
      done
  | _ -> ());
  let todo = ref [] in
  for i = n - 1 downto 0 do
    if results.(i) = None then todo := i :: !todo
  done;
  let todo = Array.of_list !todo in
  (* Phase 2: execute. *)
  if jobs = 1 then
    (* Serial path: caller's context, calling domain, submission order —
       exactly the pre-engine behaviour. *)
    Array.iter
      (fun i -> results.(i) <- Some (try Ok (js.(i).work obs) with e -> Error e))
      todo
  else begin
    let traces = Array.make n None in
    let tasks =
      Array.map
        (fun i ->
          let tr =
            match obs with
            | None -> None
            | Some _ ->
                let clock =
                  match job_clock with Some f -> f i | None -> Obs.Clock.fake ()
                in
                Some (Obs.Trace.make ~clock ())
          in
          traces.(i) <- tr;
          fun () -> js.(i).work tr)
        todo
    in
    let outs = Pool.run ~jobs tasks in
    Array.iteri (fun k i -> results.(i) <- Some outs.(k)) todo;
    (* Phase 3: fold per-job contexts — submission order, after the
       barrier, so totals and event order are independent of [jobs]. *)
    match obs with
    | None -> ()
    | Some parent ->
        Array.iter
          (fun i ->
            match traces.(i) with
            | Some t -> Obs.Trace.merge ~into:parent t
            | None -> ())
          todo
  end;
  (* Phase 4: write back fresh keyed results — submitting domain. *)
  (match (cache, codec) with
  | Some c, Some cd ->
      Array.iter
        (fun i ->
          match (js.(i).key, results.(i)) with
          | Some key, Some (Ok v) ->
              Cache.store c ~key (cd.encode v);
              incr stored
          | _ -> ())
        todo
  | _ -> ());
  let out = Array.map (function Some r -> r | None -> assert false) results in
  (out, { jobs; hits = !hits; misses = !misses; executed = Array.length todo; stored = !stored })
