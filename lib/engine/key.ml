let version_salt = "rbp-engine/2"

let encode parts =
  let b = Buffer.create 256 in
  let add s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  add version_salt;
  List.iter
    (fun (label, value) ->
      add label;
      add value)
    parts;
  Buffer.contents b

let make parts = Digest.to_hex (Digest.string (encode parts))
