(** The execution engine: cached, sharded job batches with
    deterministic merging.

    One call = one batch of independent jobs (typically "compile one
    loop on one machine"). The engine

    + probes the {!Cache} for every keyed job (submitting domain,
      submission order),
    + runs the remaining jobs on a {!Pool} of [jobs] domains,
    + folds every per-job {!Obs.Trace} context into the caller's
      context {e in submission order} after the pool barrier
      ({!Obs.Trace.merge}), and
    + stores freshly computed keyed results back (submitting domain,
      submission order).

    Determinism contract: the returned array, the caller's counter
    totals, gauge folds and event stream are pure functions of the job
    array — independent of [jobs]. Cache hits skip execution, so a warm
    run's {e trace} is smaller than a cold run's; the {e results} are
    identical because entries are decoded from exactly what a cold run
    stored ({!Obs.Json} numbers round-trip losslessly).

    Serial fallback: with [jobs <= 1] the engine passes the caller's
    own [obs] context straight into each job and runs them in order on
    the calling domain — byte-for-byte the pre-engine serial path, with
    the cache as the only (order-preserving) interposition. *)

type 'a codec = {
  encode : 'a -> Obs.Json.t;
  decode : Obs.Json.t -> 'a option;  (** [None] = unreadable, treat as miss *)
}

type 'a job = {
  key : string option;
      (** {!Key.make} content fingerprint; [None] = never cached (e.g.
          a [Custom] partitioner closure that cannot be fingerprinted) *)
  work : Obs.Trace.t option -> 'a;
      (** receives the context to instrument: the caller's own under
          [-j 1], a private per-job context under [-j N] *)
}

type stats = {
  jobs : int;      (** worker count actually used (after clamping) *)
  hits : int;      (** results served from the cache *)
  misses : int;    (** keyed jobs that had to execute *)
  executed : int;  (** jobs that ran, keyed or not *)
  stored : int;    (** fresh results written back *)
}

val map :
  ?cache:Cache.t ->
  ?codec:'a codec ->
  ?obs:Obs.Trace.t ->
  ?job_clock:(int -> Obs.Clock.t) ->
  jobs:int ->
  'a job array ->
  ('a, exn) result array * stats
(** [jobs <= 0] means {!Pool.default_jobs} (one per core). An [Error]
    slot is a job that raised — the pool and the other jobs are
    unaffected (per-job fault isolation); callers map it onto their
    structured-error type. [codec] and [cache] must both be present for
    caching to happen. [job_clock i] supplies the clock for job [i]'s
    private context in parallel mode (real runs pass wall clocks,
    deterministic runs fresh fake clocks); the default is a fresh
    {!Obs.Clock.fake} per job, which keeps counters and events exact
    and makes only span durations synthetic. *)
