(** Content-addressed on-disk result cache.

    Entries live under [dir/<k0k1>/<k2..>.json] where the path is the
    {!Key.make} digest of the job's content fingerprint — so the store
    needs no index, survives across runs and processes, and can never
    serve a stale answer for changed inputs (changed inputs are a
    different address; semantic changes to the pipeline itself are
    invalidated by bumping {!Key.version_salt}).

    The handle performs no locking: lookups and stores happen on the
    submitting domain only (see {!Run}), and stores are
    write-to-temp-then-rename so a concurrent reader or a second
    process racing on the same key sees either nothing or a complete
    entry — both fine, because entries for one key are byte-identical
    by construction. I/O failures are treated as misses or ignored: a
    broken disk degrades to recomputation, never to a wrong answer or
    a raised exception.

    Integrity: every stored entry is sealed in an MD5 envelope
    [{"sum": digest, "payload": entry}] computed over the payload's
    canonical serialization. A truncated, bit-flipped, or hand-edited
    file fails the digest (or the parse) and degrades to a miss,
    counted on [engine.cache_corrupt] — it can never decode into a
    wrong result. Pre-envelope stores are unreachable because adopting
    the envelope bumped {!Key.version_salt}. *)

type t

val default_dir : string
(** ["_rbp_cache"], resolved relative to the working directory. *)

val dir : t -> string

val open_ : ?dir:string -> unit -> t
(** Cheap; creates nothing on disk until the first {!store}. *)

val find : ?obs:Obs.Trace.t -> t -> key:string -> Obs.Json.t option
(** The unsealed payload, or [None] on absence, unreadable entry,
    malformed JSON, a missing envelope, or a digest mismatch. Only the
    readable-but-invalid cases bump [engine.cache_corrupt] on [obs]
    (absence is an ordinary miss). *)

val store : t -> key:string -> Obs.Json.t -> unit
(** Seals the entry in its integrity envelope and writes it atomically
    (temp file + rename). Failures are silently dropped — the cache is
    an accelerator, not a database. *)

type stats = {
  entries : int;  (** cached results on disk *)
  bytes : int;    (** total size of the entry files *)
}

val stat : ?dir:string -> unit -> stats
(** Walks the store; an absent directory is an empty store. *)

val clear : ?dir:string -> unit -> int
(** Removes every entry (and the bucket directories); returns how many
    entries were removed. The directory itself is kept. *)
