type entry = {
  loop_name : string;
  n_regs : int;
  greedy_ii : int;
  greedy_copies : int;
  solve : Solve.t;
}

type geometry = { label : string; clusters : int; entries : entry list }

type row = {
  label : string;
  loops : int;
  optimal : int;
  bound : int;
  exhausted : int;
  greedy_optimal : int;
  mean_greedy_ii : float;
  mean_exact_ii : float;
  mean_greedy_copies : float;
  mean_exact_copies : float;
}

let geometries = [ ("2x8", 2); ("4x4", 4); ("8x2", 8) ]

let slice ?seed ?n () =
  List.filter
    (fun loop -> Ir.Vreg.Set.cardinal (Ir.Loop.vregs loop) <= Solve.slice_max_vregs)
    (Workload.Suite.loops ?seed ?n ())

let one ?budget ~cancel ~machine loop =
  let guard = Engine.Cancel.guard cancel in
  let greedy = Partition.Driver.pipeline ~cancel:guard ~machine loop in
  let greedy_ii, greedy_copies, seed_assignment =
    match greedy with
    | Ok r ->
        ( r.Partition.Driver.clustered.Sched.Modulo.ii,
          r.Partition.Driver.n_copies,
          Some r.Partition.Driver.assignment )
    | Error _ -> (0, 0, None)
  in
  let solve = Solve.solve ?budget ~cancel:guard ?seed_assignment ~machine loop in
  {
    loop_name = Ir.Loop.name loop;
    n_regs = solve.Solve.n_regs;
    greedy_ii;
    greedy_copies;
    solve;
  }

let run ?budget ?(cancel = Engine.Cancel.never) ?(jobs = 1) ?seed ?n () =
  let loops = Array.of_list (slice ?seed ?n ()) in
  let tasks =
    Array.concat
      (List.map
         (fun (_, clusters) ->
           let machine =
             Mach.Machine.paper_clustered ~clusters ~copy_model:Mach.Machine.Embedded
           in
           Array.map (fun loop () -> one ?budget ~cancel ~machine loop) loops)
         geometries)
  in
  let results = Engine.Pool.run ~jobs tasks in
  let entry i = match results.(i) with Ok e -> e | Error exn -> raise exn in
  let per = Array.length loops in
  List.mapi
    (fun gi (label, clusters) ->
      {
        label;
        clusters;
        entries = List.init per (fun li -> entry ((gi * per) + li));
      })
    geometries

let greedy_is_optimal e =
  match e.solve.Solve.status with
  | Solve.Optimal w ->
      e.greedy_ii = w.Witness.ii && e.greedy_copies = w.Witness.copies
  | Solve.Bound _ | Solve.Budget_exhausted _ -> false

let row_of g =
  let count p = List.length (List.filter p g.entries) in
  let optimal =
    count (fun e -> match e.solve.Solve.status with Solve.Optimal _ -> true | _ -> false)
  in
  let bound =
    count (fun e -> match e.solve.Solve.status with Solve.Bound _ -> true | _ -> false)
  in
  let exhausted =
    count (fun e ->
        match e.solve.Solve.status with Solve.Budget_exhausted _ -> true | _ -> false)
  in
  (* Means compare greedy and exact over the same loops: those solved to
     proven optimality (and where greedy itself compiled). *)
  let opt_entries =
    List.filter_map
      (fun e ->
        match e.solve.Solve.status with
        | Solve.Optimal w when e.greedy_ii > 0 -> Some (e, w)
        | _ -> None)
      g.entries
  in
  let k = List.length opt_entries in
  let mean f =
    if k = 0 then 0.0
    else float_of_int (List.fold_left (fun acc ew -> acc + f ew) 0 opt_entries) /. float_of_int k
  in
  {
    label = g.label;
    loops = List.length g.entries;
    optimal;
    bound;
    exhausted;
    greedy_optimal = count greedy_is_optimal;
    mean_greedy_ii = mean (fun (e, _) -> e.greedy_ii);
    mean_exact_ii = mean (fun (_, w) -> w.Witness.ii);
    mean_greedy_copies = mean (fun (e, _) -> e.greedy_copies);
    mean_exact_copies = mean (fun (_, w) -> w.Witness.copies);
  }
