type status =
  | Optimal of Witness.t
  | Bound of { lower : int; best : Witness.t option }
  | Budget_exhausted of { lower : int; best : Witness.t option }

type t = {
  status : status;
  best_mii : int;
  best_copies : int;
  stats : Search.stats;
  diags : Verify.Diag.t list;
  remat : int;
  n_regs : int;
}

let default_budget = 300_000
let slice_max_vregs = 12

let status_name = function
  | Optimal _ -> "optimal"
  | Bound _ -> "bound"
  | Budget_exhausted _ -> "budget-exhausted"

let lower t =
  match t.status with
  | Optimal w -> w.Witness.ii
  | Bound { lower; _ } | Budget_exhausted { lower; _ } -> lower

let witness t =
  match t.status with
  | Optimal w -> Some w
  | Bound { best; _ } | Budget_exhausted { best; _ } -> best

let solve ?(budget = default_budget) ?cancel ?seed_assignment ~machine loop =
  let m : Mach.Machine.t = machine in
  let sp = Space.build loop in
  let ddg = Ddg.Graph.of_loop ~latency:m.Mach.Machine.latency loop in
  let static = Bounds.static_lower ~machine:m ddg in
  let seeds =
    Array.make sp.Space.n 0
    ::
    (match seed_assignment with
    | None -> []
    | Some a -> ( match Space.of_assignment sp a with Some v -> [ v ] | None -> []))
  in
  let o = Search.run ?cancel ~budget ~machine:m ~space:sp ~static_lower:static ~seeds () in
  let best =
    match Witness.realize ~machine:m ~loop (Space.to_assignment sp o.Search.best) with
    | Ok w -> Some w
    | Error _ -> None
  in
  let remat = List.length (Analysis.Valrange.remat_candidates loop (Analysis.Valrange.of_loop loop)) in
  let finish status diags =
    {
      status;
      best_mii = o.Search.best_mii;
      best_copies = o.Search.best_copies;
      stats = o.Search.stats;
      diags;
      remat;
      n_regs = sp.Space.n;
    }
  in
  if not o.Search.complete then
    let diags =
      match best with
      | None -> []
      | Some w -> Witness.check ~machine:m ~loop ~lower:static ~optimal:false w
    in
    finish (Budget_exhausted { lower = static; best }) diags
  else
    (* The space was exhausted: the incumbent MinII is the true minimum. *)
    let b_star = o.Search.best_mii and c_star = o.Search.best_copies in
    match best with
    | Some w when w.Witness.ii = b_star && w.Witness.copies = c_star -> (
        let diags = Witness.check ~machine:m ~loop ~lower:b_star ~optimal:true w in
        match Verify.Diag.errors diags with
        | [] -> finish (Optimal w) diags
        | _ :: _ -> finish (Bound { lower = b_star; best = Some w }) diags)
    | Some w ->
        (* Proven bound, but the scheduler could not realize it (II above
           MinII) or copy counts drifted — demote honestly. *)
        finish
          (Bound { lower = b_star; best = Some w })
          (Witness.check ~machine:m ~loop ~lower:b_star ~optimal:false w)
    | None -> finish (Bound { lower = b_star; best = None }) []
