(** Branch-and-bound over register-to-bank assignments.

    Minimizes the lexicographic score [(MinII, copies)] of
    {!Bounds.leaf_exact} over the restricted-growth space of {!Space}.
    Three pruning devices, all sound:

    - {b incremental bounds}: assigning a register pins every op it
      decides (its cluster becomes known) and forces a cross-bank
      (register, consuming-cluster) pair for every already-placed
      operand in another bank. Pinned-op and forced-pair counts are
      maintained incrementally and fed to
      {!Ddg.Minii.res_mii_clustered}, whose value — together with the
      static bound — can only grow as the assignment extends, so a
      partial score at or above the incumbent prunes the whole subtree;
    - {b conflict-driven backjumping}: every pinned op and forced pair
      remembers the deepest register it depends on. When a prune fires,
      the smallest sufficient certificate (the k cheapest contributions
      that already saturate the binding resource, the pairs that already
      reach the incumbent's copy count) names the deepest register it
      mentions; if that is above the current branching depth, every
      sibling value in between is skipped and the search resumes there;
    - {b leaf short-circuit}: at a full assignment the recurrence
      analysis (a binary search over the rebuilt DDG) is skipped when
      copy insertion and the resource bound alone already lose to the
      incumbent.

    The search is deterministic: no clocks, no randomness — a node
    budget bounds effort, and an optional [cancel] token (polled every
    256 nodes) aborts cooperatively for wall-clock deadlines. *)

type stats = {
  nodes : int;      (** assignments of one register to one bank tried *)
  leaves : int;     (** full leaf evaluations (including seeds) *)
  pruned : int;     (** subtrees cut by the incremental bound *)
  backjumps : int;  (** prunes whose certificate skipped sibling values *)
}

type outcome = {
  best : int array;     (** incumbent bank vector, in {!Space.t} order *)
  best_mii : int;
  best_copies : int;
  complete : bool;      (** space exhausted — the incumbent is optimal *)
  cancelled : bool;     (** [cancel] fired (implies [not complete]) *)
  stats : stats;
}

val run :
  ?budget:int ->
  ?cancel:(unit -> bool) ->
  machine:Mach.Machine.t ->
  space:Space.t ->
  static_lower:int ->
  seeds:int array list ->
  unit ->
  outcome
(** [budget] (default 300000) caps nodes; on exhaustion the outcome is
    the incumbent with [complete = false]. [seeds] are warm-start
    assignments (bank vectors in space order), evaluated exactly before
    the search — callers pass at least the all-zero assignment, so
    [best] is always a valid incumbent. [static_lower] must be
    {!Bounds.static_lower} of the loop's original DDG. *)
