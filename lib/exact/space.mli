(** The branch-and-bound search space: one decision variable per symbolic
    register of the loop body, assigned in a fixed order.

    The order is deterministic — registers sorted by decreasing number of
    operand references (ties by register id) — so heavily-connected
    registers are assigned first and the incremental bounds of
    {!Search} tighten as early as possible.

    Branching uses restricted-growth values: register [k] may only be
    placed in banks [0 .. min (maxused + 1) (clusters - 1)], where
    [maxused] is the highest bank used by registers [0 .. k-1]. Every
    machine this repository builds has identical clusters
    ({!Mach.Machine.paper_clustered} constructs them all from one
    template), so each equivalence class of assignments under cluster
    permutation is enumerated exactly once — the canonical member — and
    the minimum over canonical assignments is the minimum over all. *)

type op_info = {
  op_id : int;          (** {!Ir.Op.id}, for diagnostics *)
  pin : int option;
      (** index (into {!field-regs}) of the register whose bank decides
          the op's cluster — its destination, or a store's first source
          ({!Partition.Assign.cluster_of_op}); [None] for register-free
          ops, which execute on cluster 0 *)
  uses : int array;     (** distinct source-register indices *)
  copy : bool;          (** pre-existing copy op (excluded from op pinning) *)
}

type t = {
  loop : Ir.Loop.t;
  regs : Ir.Vreg.t array;       (** branching order *)
  n : int;                      (** [Array.length regs] *)
  ops : op_info array;          (** body order *)
  pinned_by : int list array;   (** register index -> ops it pins *)
  used_by : int list array;     (** register index -> ops reading it *)
  fixed_zero : int;             (** register-free non-copy ops (always cluster 0) *)
}

val build : Ir.Loop.t -> t

val to_assignment : t -> int array -> Partition.Assign.t
(** Interpret a full bank vector (indexed like {!field-regs}) as an
    assignment. Raises [Invalid_argument] on a short vector. *)

val of_assignment : t -> Partition.Assign.t -> int array option
(** Project an assignment over (at least) the loop's registers onto the
    branching order; [None] when a register of the body is unassigned. *)
