(** The heuristic-vs-optimal gap study: how close the greedy RCG
    partitioner gets to provably optimal bank assignments.

    Over a {e slice} of the suite — every loop with at most
    {!Solve.slice_max_vregs} symbolic registers, where exhaustive search
    is tractable — and the paper's three geometries (2×8, 4×4, 8×2
    under the embedded copy model), each loop is compiled twice: once
    through the production greedy pipeline, once through the exact
    solver (warm-started with the greedy assignment). The per-geometry
    aggregation feeds Table 3 of [rbp report].

    Determinism: tasks fan out over {!Engine.Pool} and are folded in
    submission order, so every number is byte-identical across [-j]
    levels; the solver itself is node-budgeted, not clock-budgeted. *)

type entry = {
  loop_name : string;
  n_regs : int;
  greedy_ii : int;      (** achieved clustered II of the greedy pipeline; 0 if it failed *)
  greedy_copies : int;
  solve : Solve.t;
}

type geometry = {
  label : string;       (** ["2x8"] — clusters × FUs per cluster *)
  clusters : int;
  entries : entry list; (** slice order *)
}

type row = {
  label : string;
  loops : int;          (** slice size *)
  optimal : int;        (** proven [Optimal] *)
  bound : int;          (** completed but demoted to [Bound] *)
  exhausted : int;      (** budget ran out *)
  greedy_optimal : int;
      (** loops where greedy matched a proven optimum on both II and copies *)
  mean_greedy_ii : float;  (** over the [Optimal] loops only, so the two *)
  mean_exact_ii : float;   (** means compare like with like *)
  mean_greedy_copies : float;
  mean_exact_copies : float;
}

val geometries : (string * int) list
(** [[("2x8", 2); ("4x4", 4); ("8x2", 8)]]. *)

val slice : ?seed:int -> ?n:int -> unit -> Ir.Loop.t list
(** The qualifying suite loops among the first [n] (default: whole
    suite): at most {!Solve.slice_max_vregs} symbolic registers. *)

val one :
  ?budget:int -> cancel:Engine.Cancel.t -> machine:Mach.Machine.t -> Ir.Loop.t -> entry
(** Greedy pipeline + exact solve (greedy-seeded) of one loop on one
    machine — the per-task body of {!run}, exposed for [rbp exact LOOP]. *)

val run :
  ?budget:int ->
  ?cancel:Engine.Cancel.t ->
  ?jobs:int ->
  ?seed:int ->
  ?n:int ->
  unit ->
  geometry list
(** One entry per (geometry, slice loop), solved with [budget] nodes
    each (default {!Solve.default_budget}) across [jobs] workers. *)

val row_of : geometry -> row

val greedy_is_optimal : entry -> bool
(** The solver proved [Optimal] and greedy matched it on (II, copies). *)
