type t = {
  assignment : Partition.Assign.t;
  rewritten : Ir.Loop.t;
  ddg : Ddg.Graph.t;
  kernel : Sched.Kernel.t;
  ii : int;
  mii : int;
  copies : int;
}

let realize ?budget_ratio ~machine ~loop assignment =
  let m : Mach.Machine.t = machine in
  match Partition.Copies.insert_loop ~machine:m ~assignment loop with
  | exception Invalid_argument msg -> Error msg
  | ins -> (
      let ddg =
        Ddg.Graph.of_loop ~latency:m.Mach.Machine.latency ins.Partition.Copies.loop
      in
      match Partition.Driver.cluster_map ins.Partition.Copies.assignment ins.Partition.Copies.loop with
      | Error msg -> Error msg
      | Ok cluster_of -> (
          let mii =
            Sched.Modulo.clustered_mii ~machine:m
              ~ops_per_cluster:ins.Partition.Copies.ops_per_cluster
              ~copies_per_cluster:ins.Partition.Copies.copies_per_cluster ddg
          in
          match Sched.Modulo.schedule ?budget_ratio ~cluster_of ~machine:m ~mii ddg with
          | None ->
              Error
                (Printf.sprintf "no feasible II found for the clustered pipeline (MII %d)" mii)
          | Some outcome ->
              Ok
                {
                  assignment = ins.Partition.Copies.assignment;
                  rewritten = ins.Partition.Copies.loop;
                  ddg;
                  kernel = outcome.Sched.Modulo.kernel;
                  ii = outcome.Sched.Modulo.ii;
                  mii;
                  copies = ins.Partition.Copies.n_copies;
                }))

let check ~machine ~loop ~lower ~optimal w =
  Verify.Exact_check.check ~machine
    {
      Verify.Exact_check.original = loop;
      rewritten = w.rewritten;
      assignment = w.assignment;
      kernel = w.kernel;
      ddg = w.ddg;
      claimed_ii = w.ii;
      claimed_copies = w.copies;
      lower;
      optimal;
    }
