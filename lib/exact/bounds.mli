(** Sound lower bounds and exact leaf evaluation for the solver.

    Terminology (DESIGN.md §16): the solver minimizes, over all total
    register-to-bank assignments, the lexicographic score
    [(MinII of the assignment, copies of the assignment)], where both
    components are computed {e exactly as the production pipeline does}
    — {!Partition.Copies.insert_loop}, DDG rebuild over the rewritten
    body, {!Sched.Modulo.clustered_mii}. Optimality claims are therefore
    scoped to the framework's copy-insertion policy (one shared copy per
    cross-bank (register, consuming cluster, reaching value)), which is
    the policy every heuristic under comparison also uses. *)

type leaf = {
  mii : int;     (** [Sched.Modulo.clustered_mii] of the rewritten loop *)
  copies : int;  (** [Partition.Copies.n_copies] *)
}

val static_lower : machine:Mach.Machine.t -> Ddg.Graph.t -> int
(** Assignment-independent lower bound on any clustered pipeline's II:
    [max] of the monolithic resource bound ⌈ops / width⌉ and the
    recurrence bound of the {e original} DDG (copy insertion reroutes
    every recurrence circuit through copies of non-negative latency and
    preserves total distance, so RecMII never decreases). *)

val leaf_exact : machine:Mach.Machine.t -> loop:Ir.Loop.t -> Partition.Assign.t -> leaf
(** Score of one total assignment, byte-for-byte the numbers
    {!Partition.Driver.pipeline} would start from. Raises
    [Invalid_argument] on assignments missing a register of the body or
    naming an out-of-range bank. *)

val compare_score : int * int -> int * int -> int
(** Lexicographic order on [(mii, copies)]. *)
