(** Turning a winning bank assignment into checkable artifacts.

    The solver's incumbent is just a bank vector and a score. A witness
    is the full evidence an optimality claim rests on: the rewritten
    body with copies, its DDG, and an actual clustered kernel — built
    through exactly the production path ({!Partition.Copies.insert_loop},
    DDG rebuild, {!Sched.Modulo.schedule} from the clustered MinII), so
    the claim is about schedules the framework really produces. *)

type t = {
  assignment : Partition.Assign.t;  (** including copy destinations *)
  rewritten : Ir.Loop.t;
  ddg : Ddg.Graph.t;                (** of the rewritten body *)
  kernel : Sched.Kernel.t;
  ii : int;                         (** achieved by [kernel] *)
  mii : int;                        (** clustered MinII scheduling started from *)
  copies : int;
}

val realize :
  ?budget_ratio:int ->
  machine:Mach.Machine.t ->
  loop:Ir.Loop.t ->
  Partition.Assign.t ->
  (t, string) result
(** [Error] when the assignment is malformed for the loop or the Rau
    scheduler finds no feasible II (it searches upward from MinII, so
    [ii >= mii] on success — equality is what optimality claims need). *)

val check : machine:Mach.Machine.t -> loop:Ir.Loop.t -> lower:int -> optimal:bool -> t -> Verify.Diag.t list
(** Independent validation via {!Verify.Exact_check}: the witness
    artifacts against the EX001–EX006 taxonomy, with [loop] as the
    original body and [ii]/[copies] as the claimed values. *)
