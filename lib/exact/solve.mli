(** Solving one loop to (proven) optimality.

    [solve] runs the branch-and-bound of {!Search} over the space of
    {!Space}, realizes the incumbent into a {!Witness.t}, has
    {!Verify.Exact_check} validate every claim independently, and
    reports one of three results:

    - [Optimal w] — the search exhausted the (symmetry-reduced) space,
      so the incumbent's clustered MinII is the true minimum [B*] over
      all bank assignments and its copy count the minimum at that II;
      {e and} the realized kernel actually achieves II = [B*] with that
      copy count; {e and} the independent verifier found no errors.
      Anything less demotes the claim.
    - [Bound { lower; best }] — the search completed but the claim
      falls short of the three-part test above (typically the Rau
      scheduler achieved II > MinII). [lower] is still the proven
      minimum MinII over all assignments.
    - [Budget_exhausted { lower; best }] — node budget or cancel token
      stopped the search; [lower] degrades to the assignment-independent
      static bound, [best] is the incumbent found so far.

    Optimality is scoped to the framework's own copy-insertion policy
    and MinII definition — see {!Bounds} and DESIGN.md §16. *)

type status =
  | Optimal of Witness.t
  | Bound of { lower : int; best : Witness.t option }
  | Budget_exhausted of { lower : int; best : Witness.t option }

type t = {
  status : status;
  best_mii : int;      (** incumbent score: clustered MinII *)
  best_copies : int;   (** incumbent score: copies at that MinII *)
  stats : Search.stats;
  diags : Verify.Diag.t list;
      (** witness-validation findings (empty when no witness realized) *)
  remat : int;
      (** rematerializable ops in the original body
          ({!Analysis.Valrange.remat_candidates}, the AN008 set) — the
          same count [rbp explain] cites, so solver cost context and
          narrative agree on one remat set *)
  n_regs : int;        (** decision variables (symbolic registers) *)
}

val default_budget : int
(** Search-node budget per loop (deterministic, machine-independent):
    300000 nodes. *)

val slice_max_vregs : int
(** Loops with at most this many symbolic registers qualify for the
    exact suite slice (the gap report): 12. Bell(12) ≈ 4.2M raw
    assignments; restricted growth, bounding and backjumping bring
    every qualifying suite loop under {!default_budget}. *)

val status_name : status -> string
(** ["optimal"], ["bound"] or ["budget-exhausted"]. *)

val lower : t -> int
(** The proven lower bound carried by the status. *)

val witness : t -> Witness.t option

val solve :
  ?budget:int ->
  ?cancel:(unit -> bool) ->
  ?seed_assignment:Partition.Assign.t ->
  machine:Mach.Machine.t ->
  Ir.Loop.t ->
  t
(** [seed_assignment] warm-starts the incumbent (typically the greedy
    partitioner's result, restricted to the original registers); the
    all-zero assignment is always seeded too, so a best incumbent
    exists even on immediate budget exhaustion. [cancel] is polled
    inside the search — pair it with {!Engine.Cancel.guard} for
    wall-clock deadlines (this breaks byte-determinism only when it
    actually fires; the node budget alone is fully deterministic). *)
