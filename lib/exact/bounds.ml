type leaf = { mii : int; copies : int }

let static_lower ~machine ddg =
  max
    (Ddg.Minii.res_mii ~width:(Mach.Machine.width machine) (Ddg.Graph.size ddg))
    (Ddg.Minii.rec_mii ddg)

let leaf_exact ~machine ~loop assignment =
  let m : Mach.Machine.t = machine in
  let ins = Partition.Copies.insert_loop ~machine:m ~assignment loop in
  let ddg' = Ddg.Graph.of_loop ~latency:m.latency ins.Partition.Copies.loop in
  {
    mii =
      Sched.Modulo.clustered_mii ~machine:m
        ~ops_per_cluster:ins.Partition.Copies.ops_per_cluster
        ~copies_per_cluster:ins.Partition.Copies.copies_per_cluster ddg';
    copies = ins.Partition.Copies.n_copies;
  }

let compare_score (m1, c1) (m2, c2) =
  let c = compare (m1 : int) m2 in
  if c <> 0 then c else compare (c1 : int) c2
