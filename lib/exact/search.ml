type stats = { nodes : int; leaves : int; pruned : int; backjumps : int }

type outcome = {
  best : int array;
  best_mii : int;
  best_copies : int;
  complete : bool;
  cancelled : bool;
  stats : stats;
}

(* Payload: [true] when the abort came from the cancel token. *)
exception Aborted of bool

let kth_smallest k l = List.nth (List.sort compare l) (k - 1)

let run ?(budget = 300_000) ?(cancel = fun () -> false) ~machine ~space
    ~static_lower ~seeds () =
  let m : Mach.Machine.t = machine in
  let sp : Space.t = space in
  let c = m.Mach.Machine.clusters in
  let n = sp.Space.n in
  let n_ops = Array.length sp.Space.ops in
  let nodes = ref 0 and leaves = ref 0 in
  let pruned = ref 0 and backjumps = ref 0 in
  let inc = ref [||] and inc_mii = ref max_int and inc_copies = ref max_int in
  let record banks mii copies =
    if Bounds.compare_score (mii, copies) (!inc_mii, !inc_copies) < 0 then begin
      inc := Array.copy banks;
      inc_mii := mii;
      inc_copies := copies
    end
  in
  let eval_seed banks =
    incr leaves;
    let l = Bounds.leaf_exact ~machine:m ~loop:sp.Space.loop (Space.to_assignment sp banks) in
    record banks l.Bounds.mii l.Bounds.copies
  in
  List.iter eval_seed seeds;
  (* Incremental state. [bank.(r)] is the bank of register [r] or -1.
     [op_cluster.(oi)] is the decided cluster of op [oi] or -1; register-free
     non-copy ops are fixed on cluster 0 up front, copy ops stay undecided
     forever (they are recreated by copy insertion, not branched on).
     [pairs] maps each forced cross-bank (register, consuming cluster) pair to
     the depth that created it — the culprit for backjumping. *)
  let bank = Array.make (max n 1) (-1) in
  let op_cluster = Array.make (max n_ops 1) (-1) in
  Array.iteri
    (fun oi (o : Space.op_info) ->
      if o.Space.pin = None && not o.Space.copy then op_cluster.(oi) <- 0)
    sp.Space.ops;
  let pinned = Array.make c 0 in
  pinned.(0) <- sp.Space.fixed_zero;
  let pairs : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let pairs_into = Array.make c 0 in
  let total_pairs = ref 0 in
  let assign d b =
    bank.(d) <- b;
    let added = ref [] and pinned_ops = ref [] in
    let add_pair r cl =
      if not (Hashtbl.mem pairs (r, cl)) then begin
        Hashtbl.add pairs (r, cl) d;
        pairs_into.(cl) <- pairs_into.(cl) + 1;
        incr total_pairs;
        added := (r, cl) :: !added
      end
    in
    List.iter
      (fun oi ->
        let o = sp.Space.ops.(oi) in
        op_cluster.(oi) <- b;
        pinned.(b) <- pinned.(b) + 1;
        pinned_ops := oi :: !pinned_ops;
        Array.iter
          (fun u -> if bank.(u) >= 0 && bank.(u) <> b then add_pair u b)
          o.Space.uses)
      sp.Space.pinned_by.(d);
    List.iter
      (fun oi ->
        let cl = op_cluster.(oi) in
        if cl >= 0 && cl <> b then add_pair d cl)
      sp.Space.used_by.(d);
    let undo_pairs = !added and undo_ops = !pinned_ops in
    fun () ->
      List.iter
        (fun key ->
          Hashtbl.remove pairs key;
          pairs_into.(snd key) <- pairs_into.(snd key) - 1;
          decr total_pairs)
        undo_pairs;
      List.iter
        (fun oi ->
          op_cluster.(oi) <- -1;
          pinned.(b) <- pinned.(b) - 1)
        undo_ops;
      bank.(d) <- -1
  in
  (* ---- Prune certificates -------------------------------------------- *)
  (* Each contribution to a counted resource carries the depth of the
     deepest branching decision it rests on: a pinned op contributes at its
     pin register's depth (-1 for register-free ops), a forced pair at the
     depth that created it. A ceiling bound [ceil (count / cap)] reaches
     value [v] as soon as [count >= (v-1)*cap + 1]; the cheapest witness is
     the k smallest contribution depths, and its culprit the k-th smallest.
     [cap = 0] encodes a resource that saturates at one contribution
     (copy_ports = 0 / busses = 0 map any traffic to an effectively
     unbounded II). *)
  let pin_contribs cl =
    let acc = ref [] in
    Array.iteri
      (fun oi (o : Space.op_info) ->
        if op_cluster.(oi) = cl then
          acc := (match o.Space.pin with Some r -> r | None -> -1) :: !acc)
      sp.Space.ops;
    !acc
  in
  let pair_contribs cl =
    Hashtbl.fold (fun (_, pc) cu acc -> if pc = cl then cu :: acc else acc) pairs []
  in
  let all_pair_contribs () = Hashtbl.fold (fun _ cu acc -> cu :: acc) pairs [] in
  let cert ~cap ~v contribs =
    if v <= 1 then Some (-1)
    else
      let k = if cap = 0 then 1 else ((v - 1) * cap) + 1 in
      if List.length contribs < k then None else Some (kth_smallest k contribs)
  in
  (* Deepest decision a proof of [partial MII lower bound >= v] needs; [None]
     when the current state does not prove it (caller falls back to no
     jump). *)
  let mii_cert v =
    if static_lower >= v then Some (-1)
    else begin
      let best = ref None in
      let push = function
        | Some cu -> (
            match !best with
            | Some b when b <= cu -> ()
            | _ -> best := Some cu)
        | None -> ()
      in
      (match m.Mach.Machine.copy_model with
      | Mach.Machine.Embedded ->
          for cl = 0 to c - 1 do
            push
              (cert ~cap:m.Mach.Machine.fus_per_cluster ~v
                 (pin_contribs cl @ pair_contribs cl))
          done
      | Mach.Machine.Copy_unit ->
          for cl = 0 to c - 1 do
            push (cert ~cap:m.Mach.Machine.fus_per_cluster ~v (pin_contribs cl));
            push (cert ~cap:m.Mach.Machine.copy_ports ~v (pair_contribs cl))
          done;
          push (cert ~cap:m.Mach.Machine.busses ~v (all_pair_contribs ())));
      !best
    end
  in
  let copies_cert k =
    if k <= 0 then Some (-1)
    else
      let contribs = all_pair_contribs () in
      if List.length contribs < k then None else Some (kth_smallest k contribs)
  in
  let prune_culprit ~d ~lbm =
    if !inc_mii = max_int then d
    else if lbm > !inc_mii then
      match mii_cert (!inc_mii + 1) with Some cu -> cu | None -> d
    else
      (* lbm = inc_mii and lbc >= inc_copies: need both halves. *)
      match (mii_cert !inc_mii, copies_cert !inc_copies) with
      | Some a, Some b -> max a b
      | _ -> d
  in
  (* ---- Leaf ----------------------------------------------------------- *)
  let leaf () =
    let a = Space.to_assignment sp bank in
    let ins = Partition.Copies.insert_loop ~machine:m ~assignment:a sp.Space.loop in
    let copies = ins.Partition.Copies.n_copies in
    let res =
      Ddg.Minii.res_mii_clustered ~machine:m
        ~ops_per_cluster:ins.Partition.Copies.ops_per_cluster
        ~copies_per_cluster:ins.Partition.Copies.copies_per_cluster
    in
    let floor_mii = max res static_lower in
    if Bounds.compare_score (floor_mii, copies) (!inc_mii, !inc_copies) >= 0 then
      (* Resources alone already lose; skip the recurrence analysis. *)
      incr pruned
    else begin
      incr leaves;
      let ddg' =
        Ddg.Graph.of_loop ~latency:m.Mach.Machine.latency ins.Partition.Copies.loop
      in
      let mii =
        Sched.Modulo.clustered_mii ~machine:m
          ~ops_per_cluster:ins.Partition.Copies.ops_per_cluster
          ~copies_per_cluster:ins.Partition.Copies.copies_per_cluster ddg'
      in
      record bank mii copies
    end
  in
  (* ---- Search --------------------------------------------------------- *)
  (* [descend d maxused] explores register [d]; the return value is the
     depth to continue at — [d - 1] normally, less after a backjump. *)
  let rec descend d maxused =
    if d = n then begin
      leaf ();
      d - 1
    end
    else begin
      let limit = min (maxused + 1) (c - 1) in
      let result = ref (d - 1) in
      (try
         for b = 0 to limit do
           if !nodes >= budget then raise (Aborted false);
           if !nodes land 255 = 0 && cancel () then raise (Aborted true);
           incr nodes;
           let undo = assign d b in
           let lbm =
             max static_lower
               (Ddg.Minii.res_mii_clustered ~machine:m ~ops_per_cluster:pinned
                  ~copies_per_cluster:pairs_into)
           in
           let lbc = !total_pairs in
           if Bounds.compare_score (lbm, lbc) (!inc_mii, !inc_copies) >= 0 then begin
             incr pruned;
             let cu = prune_culprit ~d ~lbm in
             undo ();
             if cu < d then begin
               incr backjumps;
               result := cu;
               raise Exit
             end
           end
           else begin
             let t = descend (d + 1) (max maxused b) in
             undo ();
             if t < d then begin
               result := t;
               raise Exit
             end
           end
         done
       with Exit -> ());
      !result
    end
  in
  let complete, cancelled =
    if n = 0 then (true, false)
    else
      match descend 0 (-1) with
      | _ -> (true, false)
      | exception Aborted by_cancel -> (false, by_cancel)
  in
  {
    best = !inc;
    best_mii = !inc_mii;
    best_copies = !inc_copies;
    complete;
    cancelled;
    stats =
      { nodes = !nodes; leaves = !leaves; pruned = !pruned; backjumps = !backjumps };
  }
