type op_info = {
  op_id : int;
  pin : int option;
  uses : int array;
  copy : bool;
}

type t = {
  loop : Ir.Loop.t;
  regs : Ir.Vreg.t array;
  n : int;
  ops : op_info array;
  pinned_by : int list array;
  used_by : int list array;
  fixed_zero : int;
}

(* The register whose bank decides an op's cluster — mirror of
   [Partition.Assign.cluster_of_op]: the destination, else the first
   source, else none (cluster 0). *)
let pin_reg op =
  match Ir.Op.dst op with
  | Some d -> Some d
  | None -> ( match Ir.Op.srcs op with s :: _ -> Some s | [] -> None)

let build loop =
  let ops_l = Ir.Loop.ops loop in
  let vregs = Ir.Vreg.Set.elements (Ir.Loop.vregs loop) in
  let refs = Hashtbl.create 32 in
  let bump r = Hashtbl.replace refs r (1 + Option.value ~default:0 (Hashtbl.find_opt refs r)) in
  List.iter
    (fun op ->
      List.iter bump (Ir.Op.defs op);
      List.iter bump (Ir.Op.uses op))
    ops_l;
  let count r = Option.value ~default:0 (Hashtbl.find_opt refs r) in
  let regs =
    List.sort
      (fun a b ->
        let c = compare (count b) (count a) in
        if c <> 0 then c else compare (Ir.Vreg.id a) (Ir.Vreg.id b))
      vregs
    |> Array.of_list
  in
  let index = Hashtbl.create 32 in
  Array.iteri (fun i r -> Hashtbl.replace index (Ir.Vreg.id r) i) regs;
  let idx r = Hashtbl.find index (Ir.Vreg.id r) in
  let fixed_zero = ref 0 in
  let ops =
    List.map
      (fun op ->
        let pin = Option.map idx (pin_reg op) in
        let copy = Ir.Op.is_copy op in
        if pin = None && not copy then incr fixed_zero;
        let uses =
          List.sort_uniq compare (List.map idx (Ir.Op.uses op)) |> Array.of_list
        in
        { op_id = Ir.Op.id op; pin; uses; copy })
      ops_l
    |> Array.of_list
  in
  let n = Array.length regs in
  let pinned_by = Array.make (max n 1) [] in
  let used_by = Array.make (max n 1) [] in
  Array.iteri
    (fun oi o ->
      (match o.pin with
      | Some r when not o.copy -> pinned_by.(r) <- oi :: pinned_by.(r)
      | _ -> ());
      Array.iter (fun u -> used_by.(u) <- oi :: used_by.(u)) o.uses)
    ops;
  (* Body order within each bucket, so incremental updates are stable. *)
  Array.iteri (fun i l -> pinned_by.(i) <- List.rev l) pinned_by;
  Array.iteri (fun i l -> used_by.(i) <- List.rev l) used_by;
  { loop; regs; n; ops; pinned_by; used_by; fixed_zero = !fixed_zero }

let to_assignment t banks =
  if Array.length banks < t.n then invalid_arg "Space.to_assignment: short bank vector";
  let acc = ref Ir.Vreg.Map.empty in
  Array.iteri (fun i r -> acc := Ir.Vreg.Map.add r banks.(i) !acc) t.regs;
  !acc

let of_assignment t a =
  let out = Array.make (max t.n 1) 0 in
  let ok = ref true in
  Array.iteri
    (fun i r ->
      match Partition.Assign.bank_opt a r with
      | Some b -> out.(i) <- b
      | None -> ok := false)
    t.regs;
  if !ok then Some (Array.sub out 0 t.n) else None
